"""Schedule legality checks against a target machine.

This is the legacy raise-on-violation facade over the structured
analyzer in :mod:`repro.analysis` (which the ``repro check`` CLI, the
pipeline gates and the autotuner consume directly).  The scheduling
primitives are recorded unchecked (any machine-neutral misuse already
raises in :class:`~repro.schedule.schedule.Schedule`); this module
validates a lowered schedule against the *machine's* constraints:

- SPM capacity: on cache-less processors (Sunway), every cache_read /
  cache_write buffer for one tile (including the stencil halo for read
  buffers) must fit together in the per-core scratchpad;
- thread count must not exceed the machine's cores-per-node;
- a cache-less machine requires explicit cache bindings (there is no
  hardware cache to fall back on);
- DMA placement must be at a tile-enumerating (outer) loop so that the
  transferred block is a contiguous tile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.checker import binding_footprints, check_kernel_schedule
from ..analysis.diagnostics import Diagnostic
from ..ir.kernel import Kernel
from .loopnest import LoopNest
from .schedule import CacheBinding, Schedule

__all__ = ["LegalityError", "check_schedule", "spm_tile_bytes"]


class LegalityError(ValueError):
    """A schedule violates the target machine's constraints."""

    def __init__(self, issues: List[str],
                 diagnostics: Optional[Sequence[Diagnostic]] = None):
        self.issues = list(issues)
        self.diagnostics = tuple(diagnostics or ())
        super().__init__(
            "illegal schedule:\n" + "\n".join(f"- {i}" for i in issues)
        )


def spm_tile_bytes(kernel: Kernel, tile_shape: Sequence[int],
                   bindings: Sequence[CacheBinding]) -> int:
    """SPM bytes needed for one tile's buffers.

    Read buffers hold the tile plus the stencil halo on every side (the
    overlapped region that makes tiles independent, Sec. 4.3); the write
    buffer holds the bare tile.
    """
    return sum(
        nbytes for _, nbytes in
        binding_footprints(kernel, tile_shape, bindings)
    )


def check_schedule(schedule: Schedule, nest: LoopNest, machine) -> None:
    """Validate a lowered schedule against ``machine`` (a MachineSpec).

    Raises :class:`LegalityError` collecting every violation.  This is
    the strict contract the backends rely on: every error-severity
    diagnostic raises, and so does ``PAR001`` even where the analyzer
    downgrades it to a warning (oversubscribing a cached CPU) — callers
    wanting the lenient severities should use
    :func:`repro.analysis.check_kernel_schedule` directly.
    """
    report = check_kernel_schedule(schedule, nest, machine)
    bad = [
        d for d in report
        if d.severity == "error" or d.code == "PAR001"
    ]
    if bad:
        raise LegalityError([d.message for d in bad], diagnostics=bad)
