"""Schedule legality checks against a target machine.

The scheduling primitives are recorded unchecked (any machine-neutral
misuse already raises in :class:`~repro.schedule.schedule.Schedule`);
this module validates a lowered schedule against the *machine's*
constraints:

- SPM capacity: on cache-less processors (Sunway), every cache_read /
  cache_write buffer for one tile (including the stencil halo for read
  buffers) must fit together in the per-core scratchpad;
- thread count must not exceed the machine's cores-per-node;
- a cache-less machine requires explicit cache bindings (there is no
  hardware cache to fall back on);
- DMA placement must be at a tile-enumerating (outer) loop so that the
  transferred block is a contiguous tile.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.kernel import Kernel
from .loopnest import LoopNest
from .schedule import CacheBinding, Schedule

__all__ = ["LegalityError", "check_schedule", "spm_tile_bytes"]


class LegalityError(ValueError):
    """A schedule violates the target machine's constraints."""

    def __init__(self, issues: List[str]):
        self.issues = list(issues)
        super().__init__(
            "illegal schedule:\n" + "\n".join(f"- {i}" for i in issues)
        )


def spm_tile_bytes(kernel: Kernel, tile_shape: Sequence[int],
                   bindings: Sequence[CacheBinding]) -> int:
    """SPM bytes needed for one tile's buffers.

    Read buffers hold the tile plus the stencil halo on every side (the
    overlapped region that makes tiles independent, Sec. 4.3); the write
    buffer holds the bare tile.  Each time plane read multiplies the
    read buffer.
    """
    elem = max(
        (t.dtype.nbytes for t in kernel.input_tensors), default=8
    )
    rad = kernel.radius
    total = 0
    for b in bindings:
        if b.kind == "read":
            n = 1
            for s, r in zip(tile_shape, rad):
                n *= s + 2 * r
            total += n * elem
        else:
            n = 1
            for s in tile_shape:
                n *= s
            total += n * elem
    return total


def check_schedule(schedule: Schedule, nest: LoopNest, machine) -> None:
    """Validate a lowered schedule against ``machine`` (a MachineSpec).

    Raises :class:`LegalityError` collecting every violation.
    """
    issues: List[str] = []
    kernel = schedule.kernel
    bindings = schedule.cache_bindings()

    cores = machine.cores_per_node
    if nest.nthreads > cores:
        issues.append(
            f"parallel({nest.parallel_axis}, {nest.nthreads}) exceeds the "
            f"{cores} cores of {machine.name}"
        )

    if machine.cacheless:
        if not bindings:
            issues.append(
                f"{machine.name} has no data cache: schedules must use "
                "cache_read/cache_write to stage tiles in SPM"
            )
        read_bound = {b.tensor for b in bindings if b.kind == "read"}
        missing = {t.name for t in kernel.input_tensors} - read_bound
        if bindings and missing:
            issues.append(
                f"inputs {sorted(missing)} are not cache_read-bound; on a "
                "cache-less target every input must be staged"
            )
        if bindings and not any(b.kind == "write" for b in bindings):
            issues.append(
                "no cache_write buffer; the output tile must be staged in "
                "SPM before the DMA put"
            )

        tile_shape = nest.tile_shape()
        need = spm_tile_bytes(kernel, tile_shape, bindings)
        if bindings and need > machine.spm_bytes:
            issues.append(
                f"tile {tuple(tile_shape)} needs {need} B of SPM but "
                f"{machine.name} provides {machine.spm_bytes} B per core; "
                "shrink the tile factors"
            )

        outer_names = {ax.name for ax in nest.outer_axes}
        for b in bindings:
            if b.compute_at is not None and b.compute_at not in outer_names:
                issues.append(
                    f"compute_at({b.buffer}, {b.compute_at}) targets an "
                    "inner axis; DMA must be issued at a tile-enumerating "
                    "(outer) loop"
                )

    if nest.parallel_axis is not None:
        ax = nest.axis(nest.parallel_axis)
        if ax.role == "inner":
            issues.append(
                f"parallel axis {ax.name!r} is a tile-inner loop; "
                "parallelise an outer loop so whole tiles map to cores"
            )

    if issues:
        raise LegalityError(issues)
