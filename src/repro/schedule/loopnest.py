"""The transformed loop nest produced by lowering a schedule.

A :class:`LoopNest` is the bridge between the scheduling primitives and
the backends: it lists the axes in their final nesting order (after
``tile`` and ``reorder``), knows which axis is parallelised and with how
many threads, and can enumerate the spatial *tiles* the nest visits —
which is exactly what both the C code generator and the tile-by-tile
numpy executor need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.axis import Axis

__all__ = ["LoopNest", "Tile"]


@dataclass(frozen=True)
class Tile:
    """One rectangular tile: per-original-variable half-open bounds."""

    bounds: Tuple[Tuple[str, int, int], ...]  # (var, lo, hi) outermost first
    linear_id: int

    def extent(self, var: str) -> Tuple[int, int]:
        for name, lo, hi in self.bounds:
            if name == var:
                return lo, hi
        raise KeyError(var)

    @property
    def npoints(self) -> int:
        n = 1
        for _, lo, hi in self.bounds:
            n *= hi - lo
        return n

    def shape(self) -> Tuple[int, ...]:
        return tuple(hi - lo for _, lo, hi in self.bounds)


@dataclass
class LoopNest:
    """A scheduled loop nest over a rectangular domain.

    Parameters
    ----------
    axes:
        Axes in final nesting order (outermost first).
    domain:
        Per original loop variable, its half-open extent, in the
        kernel's declaration order (outermost first).
    tile_factors:
        Per original loop variable, the tile (inner) size; variables
        that were not tiled map to their full extent.
    parallel_axis:
        Name of the parallelised axis (must be in ``axes``), if any.
    nthreads:
        Thread/core count for the parallel axis.
    """

    axes: List[Axis]
    domain: Dict[str, Tuple[int, int]]
    tile_factors: Dict[str, int] = field(default_factory=dict)
    parallel_axis: Optional[str] = None
    nthreads: int = 1
    vectorized_axis: Optional[str] = None
    unroll_factors: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [ax.name for ax in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axes in loop nest: {names}")
        if self.parallel_axis is not None and self.parallel_axis not in names:
            raise ValueError(
                f"parallel axis {self.parallel_axis!r} not in nest {names}"
            )
        if self.vectorized_axis is not None and (
                self.vectorized_axis not in names):
            raise ValueError(
                f"vectorized axis {self.vectorized_axis!r} not in nest"
            )
        for ax in self.unroll_factors:
            if ax not in names:
                raise ValueError(f"unrolled axis {ax!r} not in nest")
        if self.nthreads < 1:
            raise ValueError("nthreads must be >= 1")

    # -- structure queries -------------------------------------------------------
    @property
    def axis_names(self) -> List[str]:
        return [ax.name for ax in self.axes]

    def axis(self, name: str) -> Axis:
        for ax in self.axes:
            if ax.name == name:
                return ax
        raise KeyError(f"no axis {name!r} in loop nest")

    @property
    def outer_axes(self) -> List[Axis]:
        """Tile-enumerating axes (role 'outer'), or the full loops if untiled."""
        outers = [ax for ax in self.axes if ax.role == "outer"]
        if outers:
            return outers
        return list(self.axes)

    @property
    def inner_axes(self) -> List[Axis]:
        return [ax for ax in self.axes if ax.role == "inner"]

    @property
    def ntiles(self) -> int:
        n = 1
        for ax in self.outer_axes:
            n *= ax.extent
        return n

    def tile_shape(self) -> Tuple[int, ...]:
        """Tile extents in the *domain's* variable order."""
        return tuple(
            self.tile_factors.get(var, hi - lo)
            for var, (lo, hi) in self.domain.items()
        )

    # -- tile enumeration ----------------------------------------------------------
    def iter_tiles(self) -> Iterator[Tile]:
        """Enumerate tiles in nest order of the outer axes.

        Tiles are clipped to the domain, so edge tiles may be smaller
        when a tile factor does not divide the extent.
        """
        outers = [ax for ax in self.axes if ax.role == "outer"]
        if not outers:
            # untiled nest: a single tile covering the whole domain
            yield Tile(
                tuple((v, lo, hi) for v, (lo, hi) in self.domain.items()),
                linear_id=0,
            )
            return
        ranges = [range(ax.extent) for ax in outers]
        untiled = [
            (v, lo, hi)
            for v, (lo, hi) in self.domain.items()
            if v not in {ax.parent for ax in outers}
        ]
        for lid, combo in enumerate(itertools.product(*ranges)):
            bounds = {}
            for ax, oi in zip(outers, combo):
                var = ax.parent
                factor = self.tile_factors[var]
                dlo, dhi = self.domain[var]
                lo = dlo + oi * factor
                hi = min(lo + factor, dhi)
                bounds[var] = (lo, hi)
            ordered = []
            for v, (lo, hi) in self.domain.items():
                if v in bounds:
                    ordered.append((v, *bounds[v]))
            for v, lo, hi in untiled:
                ordered.append((v, lo, hi))
            # keep domain declaration order
            ordered.sort(
                key=lambda b: list(self.domain.keys()).index(b[0])
            )
            yield Tile(tuple(ordered), linear_id=lid)

    def tiles_for_worker(self, worker: int, nworkers: int) -> Iterator[Tile]:
        """Tiles assigned to one worker by the paper's cyclic mapping.

        Sec. 4.3: tasks whose ``mod(task_id, N) == my_id`` run on core
        ``my_id`` — a round-robin distribution over the tile sequence.
        """
        if not 0 <= worker < nworkers:
            raise ValueError(f"worker {worker} out of range [0, {nworkers})")
        for tile in self.iter_tiles():
            if tile.linear_id % nworkers == worker:
                yield tile

    # -- cost-model helpers -----------------------------------------------------------
    def npoints(self) -> int:
        n = 1
        for lo, hi in self.domain.values():
            n *= hi - lo
        return n

    def describe(self) -> str:
        """Human-readable nest summary (used in logs and docs)."""
        lines = []
        for depth, ax in enumerate(self.axes):
            par = " [parallel]" if ax.name == self.parallel_axis else ""
            lines.append(
                "  " * depth
                + f"for {ax.name} in [{ax.start}, {ax.end}){par}"
            )
        return "\n".join(lines)
