"""The per-kernel Schedule: accumulates primitives and lowers them.

Mirrors the usage in Listing 2 of the paper::

    S_3d7pt.tile(tile_x, tile_y, tile_z, xo, xi, yo, yi, zo, zi)
    S_3d7pt.reorder(xo, yo, zo, xi, yi, zi)
    S_3d7pt.cache_read(B, buffer_read, "global")
    S_3d7pt.cache_write(buffer_write, "global")
    S_3d7pt.compute_at(buffer_read, zo)
    S_3d7pt.compute_at(buffer_write, zo)
    S_3d7pt.parallel(xo, 64)

A Schedule is bound to one :class:`~repro.ir.kernel.Kernel`.  Primitive
calls record intentions; :meth:`lower` applies them to the kernel's
default loop nest over a concrete domain shape and returns a
:class:`~repro.schedule.loopnest.LoopNest` together with the cache/DMA
bindings the backends consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.diagnostics import Diagnostic
from ..ir.axis import Axis
from ..ir.kernel import Kernel
from ..obs import span
from .loopnest import LoopNest
from .primitives import (
    CacheReadPrim,
    CacheWritePrim,
    ComputeAtPrim,
    ParallelPrim,
    ReorderPrim,
    TilePrim,
    UnrollPrim,
    VectorizePrim,
)

__all__ = ["Schedule", "CacheBinding", "ScheduleError"]


class ScheduleError(ValueError):
    """An invalid combination or ordering of scheduling primitives.

    Errors raised during :meth:`Schedule.lower` carry a structured
    ``diagnostic`` (a :class:`repro.analysis.diagnostics.Diagnostic`)
    so ``repro check`` reports them uniformly with the static
    analyzer's own findings.
    """

    def __init__(self, message: str, diagnostic: Optional[Diagnostic] = None):
        super().__init__(message)
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class CacheBinding:
    """A resolved SPM buffer: what it caches and where its DMA sits."""

    buffer: str
    kind: str  # "read" | "write"
    tensor: Optional[str]  # source tensor for reads; None = kernel output
    scope: str
    compute_at: Optional[str]  # axis name, or None (outermost)


class Schedule:
    """Accumulates scheduling primitives for one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._tiles: List[TilePrim] = []
        self._reorder: Optional[ReorderPrim] = None
        self._parallel: Optional[ParallelPrim] = None
        self._cache_reads: List[CacheReadPrim] = []
        self._cache_write: Optional[CacheWritePrim] = None
        self._compute_ats: List[ComputeAtPrim] = []
        self._vectorize: Optional[VectorizePrim] = None
        self._unrolls: List[UnrollPrim] = []

    # -- primitive entry points ---------------------------------------------------
    def tile(self, *args) -> "Schedule":
        """``tile(f1, .., fn, o1, i1, .., on, in)`` — one factor + axis
        pair per loop variable, in declaration order (paper's fixed
        argument order), or ``tile(var, factor, outer, inner)`` for a
        single axis.
        """
        nvars = len(self.kernel.loop_vars)
        if len(args) == 4 and isinstance(args[0], str):
            var, factor, outer, inner = args
            self._add_tile(var, factor, outer, inner)
            return self
        if len(args) != 3 * nvars:
            raise ScheduleError(
                f"tile() for a {nvars}-D kernel takes {nvars} factors plus "
                f"{2 * nvars} axis names, got {len(args)} arguments"
            )
        factors = args[:nvars]
        names = args[nvars:]
        for idx, lv in enumerate(self.kernel.loop_vars):
            outer, inner = names[2 * idx], names[2 * idx + 1]
            self._add_tile(lv.name, factors[idx], outer, inner)
        return self

    def _add_tile(self, var: str, factor, outer: str, inner: str) -> None:
        if var not in [v.name for v in self.kernel.loop_vars]:
            raise ScheduleError(
                f"cannot tile unknown loop variable {var!r} of kernel "
                f"{self.kernel.name!r}"
            )
        if any(t.var == var for t in self._tiles):
            raise ScheduleError(f"loop variable {var!r} tiled twice")
        taken = {n for t in self._tiles for n in (t.outer, t.inner)}
        for n in (outer, inner):
            if n in taken:
                raise ScheduleError(f"axis name {n!r} already in use")
        self._tiles.append(TilePrim(var, int(factor), outer, inner))

    def reorder(self, *axes: str) -> "Schedule":
        """Permute the nest; arguments are axis names, outermost first."""
        valid = self._axis_names_after_tiling()
        order = tuple(axes)
        if sorted(order) != sorted(valid):
            raise ScheduleError(
                f"reorder must be a permutation of {sorted(valid)}, got "
                f"{list(order)}"
            )
        self._reorder = ReorderPrim(order)
        return self

    def parallel(self, axis: str, nthreads: int) -> "Schedule":
        """Distribute ``axis`` over ``nthreads`` cores."""
        if axis not in self._axis_names_after_tiling():
            raise ScheduleError(f"cannot parallelise unknown axis {axis!r}")
        self._parallel = ParallelPrim(axis, int(nthreads))
        return self

    def vectorize(self, axis: str) -> "Schedule":
        """Map ``axis`` onto SIMD lanes; must be the innermost loop."""
        names = self._axis_names_after_tiling()
        if axis not in names:
            raise ScheduleError(f"cannot vectorize unknown axis {axis!r}")
        if self._vectorize is not None:
            raise ScheduleError("only one axis may be vectorized")
        self._vectorize = VectorizePrim(axis)
        return self

    def unroll(self, axis: str, factor: int) -> "Schedule":
        """Unroll ``axis`` by ``factor``."""
        if axis not in self._axis_names_after_tiling():
            raise ScheduleError(f"cannot unroll unknown axis {axis!r}")
        if any(u.axis == axis for u in self._unrolls):
            raise ScheduleError(f"axis {axis!r} already unrolled")
        self._unrolls.append(UnrollPrim(axis, int(factor)))
        return self

    def cache_read(self, tensor, buffer: str, scope: str = "global") -> "Schedule":
        """Bind an input tensor to a named SPM read buffer."""
        tname = getattr(tensor, "name", tensor)
        known = {t.name for t in self.kernel.input_tensors}
        if tname not in known:
            raise ScheduleError(
                f"kernel {self.kernel.name!r} does not read tensor "
                f"{tname!r} (reads: {sorted(known)})"
            )
        if any(cr.tensor == tname for cr in self._cache_reads):
            raise ScheduleError(f"tensor {tname!r} already cache_read-bound")
        self._cache_reads.append(CacheReadPrim(tname, buffer, scope))
        return self

    def cache_write(self, buffer: str, scope: str = "global") -> "Schedule":
        """Bind the kernel output to a named SPM write buffer."""
        if self._cache_write is not None:
            raise ScheduleError("cache_write already specified")
        self._cache_write = CacheWritePrim(buffer, scope)
        return self

    def compute_at(self, buffer: str, axis: str) -> "Schedule":
        """Place the DMA get/put for ``buffer`` at loop ``axis``."""
        bufs = {cr.buffer for cr in self._cache_reads}
        if self._cache_write is not None:
            bufs.add(self._cache_write.buffer)
        if buffer not in bufs:
            raise ScheduleError(
                f"compute_at on unbound buffer {buffer!r}; call "
                "cache_read/cache_write first"
            )
        if axis not in self._axis_names_after_tiling():
            raise ScheduleError(f"compute_at at unknown axis {axis!r}")
        if any(ca.buffer == buffer for ca in self._compute_ats):
            raise ScheduleError(f"buffer {buffer!r} already placed")
        self._compute_ats.append(ComputeAtPrim(buffer, axis))
        return self

    # -- introspection -------------------------------------------------------
    @property
    def tile_factors(self) -> Dict[str, int]:
        return {t.var: t.factor for t in self._tiles}

    @property
    def nthreads(self) -> int:
        return self._parallel.nthreads if self._parallel else 1

    @property
    def is_tiled(self) -> bool:
        return bool(self._tiles)

    @property
    def uses_spm(self) -> bool:
        return bool(self._cache_reads) or self._cache_write is not None

    @property
    def vectorized_axis(self) -> Optional[str]:
        return self._vectorize.axis if self._vectorize else None

    @property
    def unroll_factors(self) -> Dict[str, int]:
        return {u.axis: u.factor for u in self._unrolls}

    def cache_bindings(self) -> List[CacheBinding]:
        at = {ca.buffer: ca.axis for ca in self._compute_ats}
        out: List[CacheBinding] = []
        for cr in self._cache_reads:
            out.append(
                CacheBinding(cr.buffer, "read", cr.tensor, cr.scope,
                             at.get(cr.buffer))
            )
        if self._cache_write is not None:
            cw = self._cache_write
            out.append(
                CacheBinding(cw.buffer, "write", None, cw.scope,
                             at.get(cw.buffer))
            )
        return out

    def _axis_names_after_tiling(self) -> List[str]:
        tiled = {t.var: t for t in self._tiles}
        names: List[str] = []
        for lv in self.kernel.loop_vars:
            if lv.name in tiled:
                names.extend([tiled[lv.name].outer, tiled[lv.name].inner])
            else:
                names.append(lv.name)
        return names

    # -- lowering ---------------------------------------------------------------
    def lower(self, shape: Sequence[int]) -> LoopNest:
        """Apply the recorded primitives over a concrete domain shape."""
        if len(shape) != len(self.kernel.loop_vars):
            names = [v.name for v in self.kernel.loop_vars]
            msg = (
                f"kernel {self.kernel.name!r}: domain has {len(shape)} "
                f"dims for a {len(self.kernel.loop_vars)}-D kernel "
                f"(loop variables {names})"
            )
            raise ScheduleError(msg, Diagnostic(
                "SHAPE001", "error", msg, primitive="lower",
                kernel=self.kernel.name,
            ))
        domain = {
            lv.name: (0, int(s))
            for lv, s in zip(self.kernel.loop_vars, shape)
        }
        tiled = {t.var: t for t in self._tiles}
        axes: List[Axis] = []
        for order, (lv, s) in enumerate(zip(self.kernel.loop_vars, shape)):
            base = Axis(lv, order=order, start=0, end=int(s))
            if lv.name in tiled:
                prim = tiled[lv.name]
                if prim.factor > int(s):
                    msg = (
                        f"kernel {self.kernel.name!r}: tile factor "
                        f"{prim.factor} exceeds extent {s} of {lv.name!r}"
                    )
                    raise ScheduleError(msg, Diagnostic(
                        "TILE001", "error", msg, primitive="tile",
                        kernel=self.kernel.name, axis=lv.name,
                    ))
                outer, inner = base.split(prim.factor, prim.outer, prim.inner)
                axes.extend([outer, inner])
            else:
                axes.append(base)

        if self._reorder is not None:
            by_name = {ax.name: ax for ax in axes}
            axes = [
                by_name[n].with_order(i)
                for i, n in enumerate(self._reorder.order)
            ]
        else:
            axes = [ax.with_order(i) for i, ax in enumerate(axes)]

        tile_factors = {
            t.var: min(t.factor, domain[t.var][1] - domain[t.var][0])
            for t in self._tiles
        }
        if self._vectorize is not None:
            if axes[-1].name != self._vectorize.axis:
                msg = (
                    f"kernel {self.kernel.name!r}: vectorized axis "
                    f"{self._vectorize.axis!r} must be the innermost loop "
                    f"(innermost is {axes[-1].name!r})"
                )
                raise ScheduleError(msg, Diagnostic(
                    "VEC001", "error", msg, primitive="vectorize",
                    kernel=self.kernel.name, axis=self._vectorize.axis,
                ))
        with span("schedule.lower", kernel=self.kernel.name) as sp:
            nest = LoopNest(
                axes=axes,
                domain=domain,
                tile_factors=tile_factors,
                parallel_axis=(
                    self._parallel.axis if self._parallel else None
                ),
                nthreads=self.nthreads,
                vectorized_axis=self.vectorized_axis,
                unroll_factors=self.unroll_factors,
            )
            sp.set(ntiles=nest.ntiles, nthreads=nest.nthreads,
                   tile=str(nest.tile_shape()))
        return nest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"Schedule({self.kernel.name}"]
        if self._tiles:
            parts.append(f" tile={self.tile_factors}")
        if self._parallel:
            parts.append(f" parallel={self._parallel.axis}x{self.nthreads}")
        if self.uses_spm:
            parts.append(" spm")
        return "".join(parts) + ")"
