"""Executor for overlapped temporal tiling.

Advances a stencil ``time_block`` timesteps per tile visit: each tile
gathers its extended (``time_block × radius``) neighbourhood from the
global planes, steps locally without any intermediate synchronisation,
and commits only its exact interior.  Results must equal the
step-by-step reference — redundant computation buys fewer
synchronisation rounds, never different numerics.

Boundary handling during the gather: ``periodic`` wraps (numpy take
with wrap mode); ``zero`` pads with zeros beyond the global domain.
Within a block, rim cells go stale at the known rate of ``radius`` per
step; the commit only reads the provably-valid interior.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.stencil import Stencil
from ..ir.validate import validate_stencil
from ..schedule.temporal import TemporalTilePlan, plan_temporal_tiles
from .numpy_backend import evaluate_kernel

__all__ = ["TemporalTilingExecutor"]


def _gather(plane_valid: np.ndarray, lo: Sequence[int],
            hi: Sequence[int], boundary: str) -> np.ndarray:
    """Extract [lo, hi) per dim from a (halo-free) global plane,
    applying the boundary condition outside the domain."""
    if boundary == "periodic":
        out = plane_valid
        for d, (l, h) in enumerate(zip(lo, hi)):
            idx = np.arange(l, h) % plane_valid.shape[d]
            out = np.take(out, idx, axis=d)
        return out.copy()
    # zero boundary: copy the in-domain part into a zero block
    shape = tuple(h - l for l, h in zip(lo, hi))
    out = np.zeros(shape, dtype=plane_valid.dtype)
    src = []
    dst = []
    for d, (l, h) in enumerate(zip(lo, hi)):
        sl = max(l, 0)
        sh = min(h, plane_valid.shape[d])
        if sl >= sh:
            return out  # fully outside
        src.append(slice(sl, sh))
        dst.append(slice(sl - l, sh - l))
    out[tuple(dst)] = plane_valid[tuple(src)]
    return out


class TemporalTilingExecutor:
    """Run a stencil with overlapped temporal tiling.

    Parameters
    ----------
    stencil:
        The stencil program (any number of time dependencies).
    tile:
        Spatial tile extents.
    time_block:
        Timesteps advanced per tile visit (1 = ordinary tiling).
    boundary:
        ``"zero"`` or ``"periodic"``.
    """

    def __init__(self, stencil: Stencil, tile: Sequence[int],
                 time_block: int, boundary: str = "zero",
                 inputs: Optional[Mapping[str, np.ndarray]] = None):
        validate_stencil(stencil)
        if boundary not in ("zero", "periodic"):
            raise ValueError(
                f"temporal tiling supports zero/periodic, got {boundary!r}"
            )
        if inputs:
            raise NotImplementedError(
                "auxiliary input tensors are not supported by the "
                "temporal-tiling executor yet"
            )
        self.stencil = stencil
        self.plan: TemporalTilePlan = plan_temporal_tiles(
            stencil, tile, time_block
        )
        self.boundary = boundary
        self._terms = stencil.combination_terms()
        #: total points computed (for redundancy accounting)
        self.computed_points = 0

    # -- one block over one tile --------------------------------------------------
    def _advance_tile(self, history: List[np.ndarray],
                      lo: Tuple[int, ...],
                      hi: Tuple[int, ...]) -> List[np.ndarray]:
        """Advance one tile ``time_block`` steps; returns the local
        history planes (gathered coordinates), newest last."""
        plan = self.plan
        rad = plan.radius
        ext = plan.extension
        g_lo = tuple(l - e for l, e in zip(lo, ext))
        g_hi = tuple(h + e for h, e in zip(hi, ext))
        local: List[np.ndarray] = [
            _gather(p, g_lo, g_hi, self.boundary) for p in history
        ]
        # with a Dirichlet (zero) boundary the out-of-domain cells are
        # zero at *every* timestep, not just at gather time: remember
        # which local strips lie outside the global domain
        outside: List[Tuple[slice, ...]] = []
        if self.boundary == "zero":
            shape = tuple(h - l for l, h in zip(g_lo, g_hi))
            for d, (l, h) in enumerate(zip(g_lo, g_hi)):
                if l < 0:
                    sl = [slice(None)] * len(shape)
                    sl[d] = slice(0, -l)
                    outside.append(tuple(sl))
                over = h - plan.domain[d]
                if over > 0:
                    sl = [slice(None)] * len(shape)
                    sl[d] = slice(shape[d] - over, shape[d])
                    outside.append(tuple(sl))
        out = self.stencil.output
        # local planes have no separate halo: treat the full gathered
        # block as "valid" and evaluate only the interior that still has
        # radius-r support
        for step in range(1, plan.time_block + 1):
            newest = np.zeros_like(local[-1])
            region = [
                (r, s - r) for r, s in zip(rad, newest.shape)
            ]
            planes = {}
            for scale, app in self._terms:
                plane = local[len(local) + app.time_offset]
                planes[(out.name, 0)] = plane
                for extra in range(1, out.time_window):
                    pos = len(local) + app.time_offset - extra
                    if pos >= 0:
                        planes[(out.name, -extra)] = local[pos]
                val = evaluate_kernel(
                    app.kernel, planes,
                    {out.name: (0,) * out.ndim}, region,
                )
                sl = tuple(slice(a, b) for a, b in region)
                newest[sl] += np.asarray(scale * val, dtype=newest.dtype)
            self.computed_points += int(np.prod(
                [b - a for a, b in region]
            ))
            for sl in outside:
                newest[sl] = 0
            local.append(newest)
            local = local[-self.stencil.output.time_window:]
        return local

    # -- full run ---------------------------------------------------------------
    def run(self, init: Sequence[np.ndarray], blocks: int) -> np.ndarray:
        """Run ``blocks × time_block`` timesteps; returns the newest plane.

        ``init`` supplies the W−1 initial history planes (as for the
        reference executor).
        """
        need = self.stencil.required_time_window - 1
        if len(init) != need:
            raise ValueError(f"need {need} initial planes")
        out = self.stencil.output
        history = [
            np.asarray(p, dtype=out.dtype.np_dtype).copy() for p in init
        ]
        plan = self.plan
        for _ in range(blocks):
            new_history = [
                np.zeros(out.shape, dtype=out.dtype.np_dtype)
                for _ in range(len(history))
            ]
            ext = plan.extension
            for tile_lo in self._tile_origins():
                tile_hi = tuple(
                    min(l + t, d)
                    for l, t, d in zip(tile_lo, plan.tile, plan.domain)
                )
                local = self._advance_tile(history, tile_lo, tile_hi)
                # commit the newest (and the refreshed history planes)
                commit = tuple(
                    slice(e, e + h - l)
                    for e, l, h in zip(ext, tile_lo, tile_hi)
                )
                global_sl = tuple(
                    slice(l, h) for l, h in zip(tile_lo, tile_hi)
                )
                for dst, src in zip(new_history, local[-len(new_history):]):
                    dst[global_sl] = src[commit]
            history = new_history
        return history[-1]

    def _tile_origins(self):
        plan = self.plan
        counts = plan.tiles_per_dim
        origins = [[c * t for c in range(n)]
                   for n, t in zip(counts, plan.tile)]
        if len(counts) == 1:
            for a in origins[0]:
                yield (a,)
        elif len(counts) == 2:
            for a in origins[0]:
                for b in origins[1]:
                    yield (a, b)
        else:
            for a in origins[0]:
                for b in origins[1]:
                    for c in origins[2]:
                        yield (a, b, c)

    @property
    def redundancy(self) -> float:
        """Planned computed/useful points ratio."""
        return self.plan.redundancy
