"""Sunway (SW26010) backend: athread master/slave C code generation.

On Sunway the MPE runs the time loop and control flow while the 64 CPEs
execute tiles.  MSC emits (Listing 2, Fig. 4(d)/(e)):

- ``<name>_master.c`` — MPE: window rotation, halo fill, per-timestep
  ``athread_spawn``/``athread_join`` of the slave sweep;
- ``<name>_slave.c`` — CPE: ``athread_get_id``, round-robin tile
  assignment (``task_id % 64 == my_id``), SPM buffers declared
  ``__thread_local``, DMA ``athread_get``/``athread_put`` at the
  compute_at loop level, the reordered inner loops between them;
- ``<name>.h`` — shared constants (grid/tile/halo dims, window size).

sw5cc only exists on TaihuLight, so the bundle additionally ships
``<name>_common.c`` (the MPE runtime: window storage, the tile
gather/scatter a strided DMA descriptor performs, commit, halo fill,
I/O) and ``msc_athread_stub.h`` — a sequential athread subset selected
with ``-DMSC_ATHREAD_STUB`` (``make single``).  The bundle therefore
*executes* off-platform and its output is verified bit-identical to
the reference, on top of the structural checks (SPM buffers fit 64 KB,
every input staged, round-robin tile→CPE mapping, DMA placement).
"""

from __future__ import annotations

from typing import List, Mapping

from ..ir.kernel import Kernel
from ..ir.stencil import Stencil
from ..machine.spec import SUNWAY_CG, MachineSpec
from ..schedule.legality import check_schedule
from ..schedule.schedule import Schedule
from .c_codegen import CCodeGenerator, GeneratedCode, render_expr_c

__all__ = ["SunwayCodeGenerator", "generate_sunway"]


class SunwayCodeGenerator(CCodeGenerator):
    """Emit athread master/slave sources for one stencil program."""

    def __init__(self, stencil: Stencil, schedules: Mapping[str, Schedule],
                 boundary: str = "zero",
                 machine: MachineSpec = SUNWAY_CG):
        super().__init__(stencil, schedules, boundary, use_openmp=False)
        self.machine = machine
        for name, sched in self.schedules.items():
            check_schedule(sched, self.nests[name], machine)
        if self.aux_tensors:
            raise ValueError(
                "the athread backend stages a single tensor per sweep; "
                f"auxiliary inputs {[t.name for t in self.aux_tensors]} "
                "are not supported (use the cpu/matrix targets)"
            )
        out = stencil.output
        for name, nest in self.nests.items():
            for t, s_ in zip(nest.tile_shape(), out.shape):
                if s_ % t != 0:
                    raise ValueError(
                        f"athread codegen needs tile sizes dividing the "
                        f"domain: tile {nest.tile_shape()} vs shape "
                        f"{out.shape} (the Table-5 settings divide evenly)"
                    )
        for kern in stencil.kernels:
            offs = sorted({a.time_offset for a in kern.accesses})
            if offs != list(range(-(len(offs) - 1), 1)):
                raise ValueError(
                    "athread staging requires contiguous kernel time "
                    f"offsets 0..-k, got {offs}"
                )

    # -- slave (CPE) side -----------------------------------------------------
    def _spm_decls(self, kern: Kernel) -> List[str]:
        """__thread_local SPM buffer declarations for one kernel."""
        sched = self.schedules[kern.name]
        nest = self.nests[kern.name]
        tile = nest.tile_shape()
        rad = kern.radius
        elem = self.stencil.output.dtype.nbytes
        # one sweep spawn stages only the plane(s) this kernel itself
        # reads (normally one: applications run as separate sweeps)
        kernel_planes = len({a.time_offset for a in kern.accesses})
        decls = []
        total = 0
        for b in sched.cache_bindings():
            if b.kind == "read":
                n = 1
                for s, r in zip(tile, rad):
                    n *= s + 2 * r
                n *= kernel_planes
            else:
                n = 1
                for s in tile:
                    n *= s
            total += n * elem
            decls.append(
                f"__thread_local real {b.buffer}[{n}];"
                f" /* {n * elem} B in SPM ({b.scope}) */"
            )
        if total > self.machine.spm_bytes:
            raise ValueError(
                f"SPM buffers need {total} B > {self.machine.spm_bytes} B"
            )
        return decls

    def slave_source(self) -> str:
        out = self.stencil.output
        lines: List[str] = [
            "#ifdef MSC_ATHREAD_STUB",
            '#include "msc_athread_stub.h"',
            "#else",
            '#include "slave.h"',
            '#include "dma.h"',
            "#endif",
            f'#include "{self._header_name}"',
            "",
            "/* CPE sweep: one kernel application per spawn */",
        ]
        seen = set()
        for _, app in self.stencil.combination_terms():
            kern = app.kernel
            if kern.name in seen:
                continue
            seen.add(kern.name)
            sched = self.schedules[kern.name]
            nest = self.nests[kern.name]
            tile = nest.tile_shape()
            rad = kern.radius
            lines += self._spm_decls(kern)
            bindings = sched.cache_bindings()
            read_buf = next(
                (b.buffer for b in bindings if b.kind == "read"), None
            )
            write_buf = next(
                (b.buffer for b in bindings if b.kind == "write"), None
            )
            dims = [lv.name for lv in kern.loop_vars]
            tile_args = ", ".join(str(s) for s in tile)
            padded_tile = [s + 2 * r for s, r in zip(tile, rad)]
            inner_elems = 1
            padded_elems = 1
            for s, p in zip(tile, padded_tile):
                inner_elems *= s
                padded_elems *= p

            # render the expression against the SPM tile buffer
            halos_local = {out.name: tuple(rad)}
            for aux in self.aux_tensors:
                halos_local[aux.name] = tuple(rad)

            def plane_of(tensor: str, time_offset: int,
                         _rb=read_buf) -> str:
                # every staged plane lives in the read buffer, one
                # padded tile per time plane
                slot = -time_offset
                return f"({_rb} + {slot} * {padded_elems})"

            # remap the AT_ macro to tile-local strides
            at_lines = []
            idx = dims[0]
            for d in range(1, len(dims)):
                idx = f"({idx}) * {padded_tile[d]} + ({dims[d]})"
            at_lines.append(
                f"#define AT_{out.name}(p, {', '.join(dims)}) ((p)[{idx}])"
            )
            for aux in self.aux_tensors:
                at_lines.append(
                    f"#define AT_{aux.name}(p, {', '.join(dims)}) "
                    f"((p)[{idx}])"
                )
            rendered = render_expr_c(kern.expr, plane_of, halos_local, dims)
            planes_read = len({a.time_offset for a in kern.accesses})
            w_idx = dims[0]
            for d in range(1, len(dims)):
                w_idx = f"({w_idx}) * {tile[d]} + ({dims[d]})"

            inner_loops_open = [
                f"    for (int {v} = 0; {v} < {s}; {v}++)"
                for v, s in zip(dims, tile)
            ]
            lines += at_lines
            lines += [
                f"void sweep_{kern.name}_slave(void *arg) {{",
                "  sweep_arg_t *a = (sweep_arg_t *)arg;",
                "  const int my_id = athread_get_id(-1);",
                "  volatile int reply;",
                f"  const long ntiles = {nest.ntiles};",
                f"  for (long task_id = 0; task_id < ntiles; task_id++) {{",
                f"    if (task_id % {nest.nthreads} != my_id) continue;",
                "    /* tile origin from the outer-axis decomposition */",
                "    long origin[3]; tile_origin(task_id, origin);",
                "    reply = 0;",
            ]
            for plane in range(planes_read):
                lines.append(
                    f"    athread_get(PE_MODE, main_plane(a->t_read - {plane}"
                    f", origin), {read_buf} + {plane} * {padded_elems}, "
                    f"{padded_elems} * sizeof(real), (void *)&reply, 0, 0, 0);"
                )
            lines += [
                f"    while (reply < {planes_read}) ;",
            ]
            lines += inner_loops_open
            lines += [
                f"      {write_buf}[{w_idx}] = {rendered};",
                "    reply = 0;",
                f"    athread_put(PE_MODE, {write_buf}, "
                f"acc_plane(a->acc, origin), "
                f"{inner_elems} * sizeof(real), (void *)&reply, 0, 0);",
                "    while (reply < 1) ;",
                "  }",
                "}",
                "#ifdef MSC_ATHREAD_STUB",
                f"void slave_sweep_{kern.name}_slave(void *a) "
                f"{{ sweep_{kern.name}_slave(a); }}",
                "#endif",
            ]
        return "\n".join(lines) + "\n"

    # -- master (MPE) side -------------------------------------------------------
    def master_source(self) -> str:
        out = self.stencil.output
        hist = self.stencil.required_time_window - 1
        terms = self.stencil.combination_terms()
        lines: List[str] = [
            "#ifdef MSC_ATHREAD_STUB",
            "#define MSC_ATHREAD_STUB_PRIMARY",
            "#endif",
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            f'#include "{self._header_name}"',
            "#ifdef MSC_ATHREAD_STUB",
            '#include "msc_athread_stub.h"',
            "#else",
            "#include <athread.h>",
            "#endif",
            "",
        ]
        seen = set()
        for _, app in terms:
            if app.kernel.name not in seen:
                seen.add(app.kernel.name)
                lines.append(
                    f"extern void slave_sweep_{app.kernel.name}_slave"
                    "(void *);"
                )
        lines += [
            "",
            "int main(int argc, char **argv) {",
            "  athread_init();",
            f"  /* window of TWIN={out.time_window} planes; history "
            f"t=0..{hist - 1} loaded from argv[1] */",
            "  long steps = strtol(argv[2], NULL, 10);",
            "  load_history(argv[1]);",
            f"  for (long t = {hist}; t < {hist} + steps; t++) {{",
            "    sweep_arg_t a;",
            "    a.acc = acc_buffer();",
            "    clear_acc(a.acc);",
            "    clear_plane(t);",
        ]
        for scale, app in terms:
            lines += [
                f"    a.t_read = t - {-app.time_offset};",
                f"    a.scale = (real){scale!r};",
                f"    athread_spawn(sweep_{app.kernel.name}_slave, &a);",
                "    athread_join();",
                "    commit_scaled(a.acc, a.scale, t);",
            ]
        lines += [
            "    fill_halo(plane_of(t));",
            "  }",
            "  store_newest(argv[3]);",
            "  athread_halt();",
            "  return 0;",
            "}",
        ]
        return "\n".join(lines) + "\n"

    def shared_header(self) -> str:
        out = self.stencil.output
        padded, halo = self._dims(out)
        anyk = self.stencil.kernels[0]
        nest = self.nests[anyk.name]
        tile = nest.tile_shape()
        lines = [
            "#ifndef MSC_GENERATED_H",
            "#define MSC_GENERATED_H",
            f"typedef {self.real} real;",
            f"#define TWIN {out.time_window}",
        ]
        for nm, v in zip(["NZ", "NY", "NX"][-self.ndim:], out.shape):
            lines.append(f"#define {nm} {v}")
        for nm, v in zip(["HZ", "HY", "HX"][-self.ndim:], halo):
            lines.append(f"#define {nm} {v}")
        for nm, v in zip(["TZ", "TY", "TX"][-self.ndim:], tile):
            lines.append(f"#define {nm} {v}")
        for nm, v in zip(["PZ", "PY", "PX"][-self.ndim:], padded):
            lines.append(f"#define {nm} {v}")
        counts = [
            -(-s_ // t) for s_, t in zip(out.shape, tile)
        ]
        for nm, v in zip(["TCZ", "TCY", "TCX"][-self.ndim:], counts):
            lines.append(f"#define {nm} {v}")
        lines.append(f"#define MSC_NUM_CPES {nest.nthreads}")
        lines += [
            "typedef struct { long t_read; real scale; real *acc; }"
            " sweep_arg_t;",
            "real *main_plane(long t, const long *origin);",
            "real *acc_plane(real *acc, const long *origin);",
            "real *acc_buffer(void);",
            "real *plane_of(long t);",
            "void tile_origin(long task_id, long *origin);",
            "void clear_acc(real *acc);",
            "void clear_plane(long t);",
            "void commit_scaled(real *acc, real scale, long t);",
            "void fill_halo(real *p);",
            "void load_history(const char *path);",
            "void store_newest(const char *path);",
            "#endif",
        ]
        return "\n".join(lines) + "\n"


    # -- MPE runtime (common) ---------------------------------------------------
    def common_source(self) -> str:
        """Portable-C MPE runtime: window storage, tile gather/scatter
        (the data movement a strided DMA descriptor performs), commit,
        halo fill and binary I/O.  Shared by the sw5cc and the
        -DMSC_ATHREAD_STUB builds."""
        out = self.stencil.output
        rad = self.stencil.radius
        hist = self.stencil.required_time_window - 1
        dims = ["k", "j", "i"][-self.ndim:]
        N = ["NZ", "NY", "NX"][-self.ndim:]
        P = ["PZ", "PY", "PX"][-self.ndim:]
        H = ["HZ", "HY", "HX"][-self.ndim:]
        T = ["TZ", "TY", "TX"][-self.ndim:]
        TC = ["TCZ", "TCY", "TCX"][-self.ndim:]
        R = [str(r) for r in rad]

        def flat(names, coords):
            expr = coords[0]
            for d in range(1, self.ndim):
                expr = f"({expr}) * {names[d]} + ({coords[d]})"
            return expr

        pt_elems = " * ".join(
            f"({t} + 2 * {r})" for t, r in zip(T, R)
        )
        tile_elems = " * ".join(T)
        plane_elems = " * ".join(P)
        valid_elems = " * ".join(N)

        lines: List[str] = [
            f'#include "{self._header_name}"',
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "",
            f"#define PLANE_ELEMS ((long)({plane_elems}))",
            f"#define VALID_ELEMS ((long)({valid_elems}))",
            f"#define GATHER_ELEMS ((long)({pt_elems}))",
            f"#define TILE_ELEMS ((long)({tile_elems}))",
            "",
            "static real *win;",
            "static real *acc_buf;",
            "static real gather_scratch[GATHER_ELEMS];",
            "static real put_scratch[TILE_ELEMS];",
            "static struct {",
            "  real *acc;",
            f"  long o[{self.ndim}];",
            "  int active;",
            "} pending;",
            "static long g_newest = -1;",
            "#define PLANE(t) (win + (((t) % TWIN + TWIN) % TWIN)"
            " * PLANE_ELEMS)",
            "",
            "static void flush_pending(void) {",
            "  if (!pending.active) return;",
            "  long pos = 0;",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {T[d]}; {v}++)"
            )
        coords = [f"pending.o[{d}] + {v}" for d, v in enumerate(dims)]
        lines.append(
            "  " * (self.ndim + 1)
            + f"pending.acc[{flat(N, coords)}] = put_scratch[pos++];"
        )
        lines += [
            "  pending.active = 0;",
            "}",
            "",
            "real *main_plane(long t, const long *origin) {",
            "  flush_pending();",
            "  real *p = PLANE(t);",
            "  long pos = 0;",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {T[d]} + 2 * {R[d]}; {v}++)"
            )
        gcoords = [
            f"origin[{d}] + {H[d]} - {R[d]} + {v}"
            for d, v in enumerate(dims)
        ]
        lines.append(
            "  " * (self.ndim + 1)
            + f"gather_scratch[pos++] = p[{flat(P, gcoords)}];"
        )
        lines += [
            "  return gather_scratch;",
            "}",
            "",
            "real *acc_plane(real *acc, const long *origin) {",
            "  flush_pending();",
            "  pending.acc = acc;",
        ]
        for d in range(self.ndim):
            lines.append(f"  pending.o[{d}] = origin[{d}];")
        lines += [
            "  pending.active = 1;",
            "  return put_scratch;",
            "}",
            "",
            "void tile_origin(long task_id, long *origin) {",
            "  long rem = task_id;",
        ]
        for d in range(self.ndim - 1, 0, -1):
            lines.append(
                f"  origin[{d}] = (rem % {TC[d]}) * {T[d]}; "
                f"rem /= {TC[d]};"
            )
        lines.append(f"  origin[0] = rem * {T[0]};")
        lines += [
            "}",
            "",
            "real *acc_buffer(void) { return acc_buf; }",
            "real *plane_of(long t) { return PLANE(t); }",
            "void clear_acc(real *acc) {"
            " memset(acc, 0, sizeof(real) * VALID_ELEMS); }",
            "",
            "void clear_plane(long t) {",
            "  real *p = PLANE(t);",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {N[d]}; {v}++)"
            )
        icoords = [f"{v} + {H[d]}" for d, v in enumerate(dims)]
        lines.append(
            "  " * (self.ndim + 1) + f"p[{flat(P, icoords)}] = 0;"
        )
        lines += [
            "}",
            "",
            "void commit_scaled(real *acc, real scale, long t) {",
            "  flush_pending();",
            "  real *p = PLANE(t);",
            "  long pos = 0;",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {N[d]}; {v}++)"
            )
        lines.append(
            "  " * (self.ndim + 1)
            + f"p[{flat(P, icoords)}] += scale * acc[pos++];"
        )
        lines += [
            "  g_newest = t;",
            "}",
            "",
        ]
        # halo fill (zero / periodic), same scheme as the CPU generator
        lines.append("void fill_halo(real *p) {")
        for d in range(self.ndim):
            loops_open = []
            for dd in range(self.ndim):
                if dd == d:
                    continue
                v = dims[dd]
                loops_open.append(
                    f"for (long {v} = 0; {v} < {P[dd]}; {v}++)"
                )
            lo_idx, hi_idx, lo_src, hi_src = [], [], [], []
            for dd in range(self.ndim):
                v = dims[dd]
                if dd == d:
                    lo_idx.append("h")
                    hi_idx.append(f"{P[dd]} - 1 - h")
                    if self.boundary == "periodic":
                        lo_src.append(f"{P[dd]} - 2 * {H[dd]} + h")
                        hi_src.append(f"2 * {H[dd]} - 1 - h")
                    else:
                        lo_src.append("0")
                        hi_src.append("0")
                else:
                    for target in (lo_idx, hi_idx, lo_src, hi_src):
                        target.append(v)
            for ind, l in enumerate(loops_open):
                lines.append("  " * (ind + 1) + l)
            ind = len(loops_open) + 1
            lines.append("  " * ind + f"for (long h = 0; h < {H[d]}; h++) {{")
            if self.boundary == "periodic":
                lines.append(
                    "  " * (ind + 1)
                    + f"p[{flat(P, lo_idx)}] = p[{flat(P, lo_src)}];"
                )
                lines.append(
                    "  " * (ind + 1)
                    + f"p[{flat(P, hi_idx)}] = p[{flat(P, hi_src)}];"
                )
            else:
                lines.append(
                    "  " * (ind + 1) + f"p[{flat(P, lo_idx)}] = 0;"
                )
                lines.append(
                    "  " * (ind + 1) + f"p[{flat(P, hi_idx)}] = 0;"
                )
            lines.append("  " * ind + "}")
        lines += [
            "}",
            "",
            "void load_history(const char *path) {",
            "  win = (real *)calloc((size_t)TWIN * PLANE_ELEMS,"
            " sizeof(real));",
            "  acc_buf = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            '  FILE *fi = fopen(path, "rb");',
            '  if (!fi) { perror("init"); exit(1); }',
            "  real *tmp = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            f"  for (long s = 0; s < {hist}; s++) {{",
            "    if (fread(tmp, sizeof(real), VALID_ELEMS, fi) != "
            '(size_t)VALID_ELEMS) { fprintf(stderr, "short init\\n");'
            " exit(1); }",
            "    real *p = PLANE(s);",
            "    long pos = 0;",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 2)
                + f"for (long {v} = 0; {v} < {N[d]}; {v}++)"
            )
        lines.append(
            "  " * (self.ndim + 2)
            + f"p[{flat(P, icoords)}] = tmp[pos++];"
        )
        lines += [
            "    fill_halo(p);",
            f"    g_newest = s;",
            "  }",
            "  fclose(fi);",
            "  free(tmp);",
            "}",
            "",
            "void store_newest(const char *path) {",
            "  real *p = PLANE(g_newest);",
            "  real *tmp = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            "  long pos = 0;",
        ]
        for d, v in enumerate(dims):
            lines.append(
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {N[d]}; {v}++)"
            )
        lines.append(
            "  " * (self.ndim + 1)
            + f"tmp[pos++] = p[{flat(P, icoords)}];"
        )
        lines += [
            '  FILE *fo = fopen(path, "wb");',
            '  if (!fo) { perror("out"); exit(1); }',
            "  fwrite(tmp, sizeof(real), VALID_ELEMS, fo);",
            "  fclose(fo); free(tmp);",
            "}",
        ]
        return "\n".join(lines) + "\n"

    @property
    def _header_name(self) -> str:
        return f"{self._name}.h"

    def generate(self, name: str) -> GeneratedCode:
        from ..obs import span
        from .athread_stub import ATHREAD_STUB_HEADER

        self._name = name
        with span("codegen.sunway", bundle=name):
            code = GeneratedCode(name=name, target="sunway")
            with span("codegen.sunway.master"):
                code.files[f"{name}_master.c"] = self.master_source()
            with span("codegen.sunway.slave"):
                code.files[f"{name}_slave.c"] = self.slave_source()
            with span("codegen.sunway.common"):
                code.files[f"{name}_common.c"] = self.common_source()
            with span("codegen.sunway.header"):
                code.files[f"{name}.h"] = self.shared_header()
            code.files["msc_athread_stub.h"] = ATHREAD_STUB_HEADER
        return code


def generate_sunway(stencil: Stencil, schedules: Mapping[str, Schedule],
                    name: str, boundary: str = "zero") -> GeneratedCode:
    """Generate the athread master/slave bundle for a stencil."""
    return SunwayCodeGenerator(stencil, schedules, boundary).generate(name)
