"""AOT C code generation (Sec. 3: "generate standard C codes as well as
corresponding building scripts").

The generator lowers a validated :class:`~repro.ir.stencil.Stencil` plus
its kernels' schedules into a self-contained C program:

- one *sweep* function per kernel, with the scheduled loop nest (tiled,
  reordered, optionally OpenMP-parallel),
- a time loop driving the sliding window (planes addressed modulo W),
- halo fill for the configured boundary condition,
- a small binary I/O ``main`` so generated programs can be executed and
  checked against the numpy reference (this replaces running on the
  authors' hardware; the *Sunway* backend additionally emits athread
  master/slave files that are validated structurally).

The emitted program protocol is::

    ./prog <init.bin> <timesteps> <out.bin>

``init.bin`` holds the W-1 initial history planes (valid region only,
C order) followed by any auxiliary input tensors; ``out.bin`` receives
the newest valid plane after ``timesteps`` sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.expr import (
    CallFuncExpr,
    ConstExpr,
    Expr,
    OperatorExpr,
    TensorAccess,
    VarExpr,
)
from ..ir.kernel import Kernel, KernelApply
from ..ir.stencil import Stencil
from ..ir.validate import validate_stencil
from ..schedule.loopnest import LoopNest
from ..schedule.schedule import Schedule

__all__ = ["GeneratedCode", "CCodeGenerator", "render_expr_c"]


@dataclass
class GeneratedCode:
    """A bundle of generated source files plus build script."""

    name: str
    target: str
    files: Dict[str, str] = field(default_factory=dict)

    def write_to(self, directory: str) -> List[str]:
        """Write all files under ``directory``; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for fname, content in self.files.items():
            path = os.path.join(directory, fname)
            with open(path, "w") as fh:
                fh.write(content)
            paths.append(path)
        return paths

    @property
    def main_source(self) -> str:
        """The primary C file (first .c file emitted)."""
        for fname, content in self.files.items():
            if fname.endswith(".c"):
                return content
        raise KeyError("no C source in bundle")

    def loc(self, wrap: int = 0) -> int:
        """Total non-blank lines of generated code (Table 6 accounting).

        With ``wrap`` > 0, lines longer than ``wrap`` columns count as
        the number of wrapped lines a human would write — fair when
        comparing against hand-written code that folds long stencil
        expressions.
        """
        total = 0
        for content in self.files.values():
            for line in content.splitlines():
                if not line.strip():
                    continue
                if wrap > 0:
                    total += -(-len(line) // wrap)
                else:
                    total += 1
        return total


def render_expr_c(expr: Expr,
                  plane_of: Callable[[str, int], str],
                  halos: Mapping[str, Sequence[int]],
                  var_names: Sequence[str]) -> str:
    """Render an expression to C.

    ``plane_of(tensor, time_offset)`` returns the C expression for the
    plane base pointer; accesses become ``AT_<T>(plane, k + <h+off>, ...)``
    macro calls where the loop variables are the *valid-domain*
    coordinates and the macro adds nothing (the halo shift is folded
    into the rendered offset).
    """
    if isinstance(expr, ConstExpr):
        if isinstance(expr.value, float):
            # cast to the working precision so fp32 programs do their
            # arithmetic in float (C would otherwise promote every
            # double literal and drift bitwise from the numpy backend)
            return f"((real){expr.value!r})"
        return str(expr.value)
    if isinstance(expr, VarExpr):
        return expr.name
    if isinstance(expr, TensorAccess):
        name = expr.tensor.name
        halo = halos[name]
        parts = []
        for d, ix in enumerate(expr.indices):
            total = halo[d] + ix.offset
            if total == 0:
                parts.append(ix.var.name)
            elif total > 0:
                parts.append(f"{ix.var.name} + {total}")
            else:
                parts.append(f"{ix.var.name} - {-total}")
        plane = plane_of(name, expr.time_offset)
        return f"AT_{name}({plane}, {', '.join(parts)})"
    if isinstance(expr, OperatorExpr):
        rendered = [
            render_expr_c(o, plane_of, halos, var_names)
            for o in expr.operands
        ]
        if expr.op == "neg":
            return f"(-{rendered[0]})"
        spell = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[expr.op]
        return f"({rendered[0]} {spell} {rendered[1]})"
    if isinstance(expr, CallFuncExpr):
        args = ", ".join(
            render_expr_c(a, plane_of, halos, var_names) for a in expr.args
        )
        return f"{expr.func}({args})"
    raise TypeError(f"cannot render {type(expr).__name__} to C")


class CCodeGenerator:
    """Generates the portable C (OpenMP) program for a stencil.

    Subclassed / reused by the target backends: ``cpu`` and ``matrix``
    emit this program directly (their difference is thread count and
    build flags); ``sunway`` replaces the sweep bodies with athread
    master/slave files.
    """

    def __init__(self, stencil: Stencil, schedules: Mapping[str, Schedule],
                 boundary: str = "zero", use_openmp: bool = True,
                 nthreads: Optional[int] = None,
                 scalars: Optional[Mapping[str, float]] = None):
        validate_stencil(stencil)
        from ..ir.analysis import free_scalars

        self.scalars = dict(scalars) if scalars else {}
        missing = [
            n for n in free_scalars(stencil) if n not in self.scalars
        ]
        if missing:
            raise ValueError(
                f"kernel(s) read runtime scalars {missing} with no bound "
                "values; pass scalars={...} (or set_scalar on the program)"
            )
        if boundary not in ("zero", "periodic", "reflect"):
            raise ValueError(
                f"C backend supports zero/periodic/reflect boundaries, "
                f"got {boundary!r}"
            )
        self.stencil = stencil
        self.boundary = boundary
        self.use_openmp = use_openmp
        self.schedules = dict(schedules)
        for kern in stencil.kernels:
            self.schedules.setdefault(kern.name, Schedule(kern))
        self.nests: Dict[str, LoopNest] = {
            name: sched.lower(stencil.output.shape)
            for name, sched in self.schedules.items()
        }
        self.nthreads = nthreads or max(
            n.nthreads for n in self.nests.values()
        )
        out = stencil.output
        self.real = out.dtype.c_name
        self.ndim = out.ndim
        self.aux_tensors = self._aux_tensors()

    # -- helpers -----------------------------------------------------------------
    def _aux_tensors(self) -> List:
        out_name = self.stencil.output.name
        seen = {}
        for kern in self.stencil.kernels:
            for tensor in kern.input_tensors:
                if tensor.name != out_name:
                    seen.setdefault(tensor.name, tensor)
        return list(seen.values())

    def _dims(self, tensor) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        halo = getattr(tensor, "halo", (0,) * tensor.ndim)
        padded = tuple(s + 2 * h for s, h in zip(tensor.shape, halo))
        return padded, halo

    def _at_macro(self, tensor) -> str:
        padded, _ = self._dims(tensor)
        name = tensor.name
        dims = ["k", "j", "i"][-tensor.ndim:]
        args = ", ".join(dims)
        # row-major flattening over the padded extents
        idx = dims[0]
        for d in range(1, tensor.ndim):
            idx = f"({idx}) * {padded[d]}L + ({dims[d]})"
        return f"#define AT_{name}(p, {args}) ((p)[{idx}])"

    def _plane_elems(self, tensor) -> int:
        padded, _ = self._dims(tensor)
        n = 1
        for s in padded:
            n *= s
        return n

    # -- emission ----------------------------------------------------------------
    def header(self) -> str:
        out = self.stencil.output
        padded, halo = self._dims(out)
        w = out.time_window
        lines = [
            f"/* generated by MSC: stencil over {out.name}"
            f" {out.shape}, window {w} */",
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "#include <math.h>",
        ]
        if self.use_openmp:
            lines += ["#ifdef _OPENMP", "#include <omp.h>", "#endif"]
        lines.append(f"typedef {self.real} real;")
        names = ["NZ", "NY", "NX"][-self.ndim:]
        pnames = ["PZ", "PY", "PX"][-self.ndim:]
        hnames = ["HZ", "HY", "HX"][-self.ndim:]
        for nm, v in zip(names, out.shape):
            lines.append(f"#define {nm} {v}")
        for nm, v in zip(pnames, padded):
            lines.append(f"#define {nm} {v}")
        for nm, v in zip(hnames, halo):
            lines.append(f"#define {nm} {v}")
        lines.append(f"#define TWIN {w}")
        plane = " * ".join(pnames)
        lines.append(f"#define PLANE_ELEMS ((long)({plane}))")
        lines.append(f"static real *{out.name}_win; /* TWIN planes */")
        lines.append(
            f"#define PLANE_{out.name}(t) "
            f"({out.name}_win + (((t) % TWIN + TWIN) % TWIN) * PLANE_ELEMS)"
        )
        lines.append(self._at_macro(out))
        for aux in self.aux_tensors:
            lines.append(
                f"static real *{aux.name}_buf; "
                f"/* static input, {self._plane_elems(aux)} elems */"
            )
            lines.append(self._at_macro(aux))
        valid = " * ".join(f"(long){n}" for n in names)
        lines.append(f"#define VALID_ELEMS ({valid})")
        for sname, sval in sorted(self.scalars.items()):
            lines.append(f"static const real {sname} = {sval!r};")
        return "\n".join(lines)

    def halo_fill(self) -> str:
        """Emit fill_halo(real *plane) for the configured boundary."""
        out = self.stencil.output
        _, halo = self._dims(out)
        dims = ["k", "j", "i"][-self.ndim:]
        pnames = ["PZ", "PY", "PX"][-self.ndim:]
        hnames = ["HZ", "HY", "HX"][-self.ndim:]
        body: List[str] = []
        for d in range(self.ndim):
            if halo[d] == 0:
                continue
            loops_open = []
            loops_close = []
            idx_lo, idx_hi, src_lo, src_hi = [], [], [], []
            for dd in range(self.ndim):
                v = dims[dd]
                if dd == d:
                    continue
                loops_open.append(
                    f"for (long {v} = 0; {v} < {pnames[dd]}; {v}++) {{"
                )
                loops_close.append("}")
            for dd in range(self.ndim):
                v = dims[dd]
                if dd == d:
                    idx_lo.append("h")
                    idx_hi.append(f"{pnames[dd]} - 1 - h")
                    if self.boundary == "periodic":
                        src_lo.append(f"{pnames[dd]} - 2 * {hnames[dd]} + h")
                        src_hi.append(f"2 * {hnames[dd]} - 1 - h")
                    elif self.boundary == "reflect":
                        # mirror the near interior (matches numpy
                        # fill_halo: lo[i] = p[2H-1-i], hi[i] = p[P-H-1-i])
                        src_lo.append(f"2 * {hnames[dd]} - 1 - h")
                        src_hi.append(f"{pnames[dd]} - 2 * {hnames[dd]} + h")
                    else:
                        src_lo.append("0")
                        src_hi.append("0")
                else:
                    idx_lo.append(v)
                    idx_hi.append(v)
                    src_lo.append(v)
                    src_hi.append(v)
            inner = f"for (long h = 0; h < {hnames[d]}; h++) {{"
            out_name = out.name
            if self.boundary in ("periodic", "reflect"):
                lo_stmt = (
                    f"AT_{out_name}(p, {', '.join(idx_lo)}) = "
                    f"AT_{out_name}(p, {', '.join(src_lo)});"
                )
                hi_stmt = (
                    f"AT_{out_name}(p, {', '.join(idx_hi)}) = "
                    f"AT_{out_name}(p, {', '.join(src_hi)});"
                )
            else:
                lo_stmt = f"AT_{out_name}(p, {', '.join(idx_lo)}) = 0;"
                hi_stmt = f"AT_{out_name}(p, {', '.join(idx_hi)}) = 0;"
            body.append(
                "\n".join(
                    ["  " + l for l in loops_open]
                    + ["  " + inner, "    " + lo_stmt, "    " + hi_stmt, "  }"]
                    + ["  " + l for l in loops_close]
                )
            )
        return (
            "static void fill_halo(real *p) {\n"
            + "\n".join(body)
            + "\n}"
        )

    def _valid_region_loops(
        self, indent: int = 2
    ) -> Tuple[List[str], List[str], str, str]:
        """Loop scaffolding over the valid (unpadded) region.

        Returns ``(loop_open, loop_close, flat, shifted)``: opening and
        closing brace lines indented starting at ``indent`` levels,
        ``flat`` — the dense index into a valid-region buffer, and
        ``shifted`` — the halo-shifted index list into a padded plane.
        Shared by the file-I/O ``main`` and the shared-library entry.
        """
        names = ["NZ", "NY", "NX"][-self.ndim:]
        hnames = ["HZ", "HY", "HX"][-self.ndim:]
        dims = ["k", "j", "i"][-self.ndim:]
        loop_open = []
        loop_close = []
        for d, v in enumerate(dims):
            loop_open.append(
                "  " * (d + indent)
                + f"for (long {v} = 0; {v} < {names[d]}; {v}++) {{"
            )
            loop_close.append("  " * (d + indent) + "}")
        flat = dims[0]
        for d in range(1, self.ndim):
            flat = f"({flat}) * (long){names[d]} + ({dims[d]})"
        shifted = ", ".join(f"{v} + {h}" for v, h in zip(dims, hnames))
        return loop_open, loop_close, flat, shifted

    def _timestep_body(self) -> List[str]:
        """Statements inside the time loop: sweeps, writeback, halo.

        Assumes ``long t`` (the plane being written) and a zeroable
        ``real *acc`` scratch buffer are in scope.
        """
        out = self.stencil.output
        loop_open, loop_close, flat, shifted = self._valid_region_loops(3)
        lines = ["    memset(acc, 0, sizeof(real) * VALID_ELEMS);"]
        for scale, app in self.stencil.combination_terms():
            lines.append(
                f"    sweep_{app.kernel.name}(t - {-app.time_offset}, acc, "
                f"(real){scale!r});"
            )
        lines.append(f"    real *p = PLANE_{out.name}(t);")
        lines += loop_open
        lines.append(
            "  " * (self.ndim + 3)
            + f"AT_{out.name}(p, {shifted}) = acc[{flat}];"
        )
        lines += loop_close[::-1]
        lines.append("    fill_halo(p);")
        return lines

    def _loop_nest_code(self, kern: Kernel, nest: LoopNest,
                        body: str, parallel_pragma: bool) -> str:
        """Emit the scheduled loop nest around ``body``.

        Tiled variables are recovered inside the nest via
        ``k = ko * TILE + ki`` with an edge guard.
        """
        lines: List[str] = []
        indent = 0

        def emit(s: str) -> None:
            lines.append("  " * indent + s)

        names = {lv.name for lv in kern.loop_vars}
        factors = nest.tile_factors
        for ax in nest.axes:
            pragma = (
                parallel_pragma
                and self.use_openmp
                and ax.name == nest.parallel_axis
            )
            if pragma:
                emit(
                    f"#ifdef _OPENMP\n"
                    + "  " * indent
                    + f"#pragma omp parallel for num_threads({self.nthreads})"
                    f" schedule(static)\n"
                    + "  " * indent
                    + "#endif"
                )
            if ax.name == nest.vectorized_axis and self.use_openmp:
                emit(
                    "#ifdef _OPENMP\n" + "  " * indent
                    + "#pragma omp simd\n" + "  " * indent + "#endif"
                )
            if ax.name in nest.unroll_factors:
                emit(
                    f"#pragma GCC unroll {nest.unroll_factors[ax.name]}"
                )
            emit(
                f"for (long {ax.name} = {ax.start}; {ax.name} < {ax.end}; "
                f"{ax.name}++) {{"
            )
            indent += 1
            if ax.role == "inner":
                var = ax.parent
                outer = next(
                    a.name for a in nest.axes
                    if a.parent == var and a.role == "outer"
                )
                hi = nest.domain[var][1]
                emit(
                    f"long {var} = {outer} * {factors[var]}L + {ax.name};"
                )
                emit(f"if ({var} >= {hi}) continue;")
            elif ax.role is None and ax.name in names:
                pass  # untiled axis: the loop var IS the domain var
        emit(body)
        for _ in nest.axes:
            indent -= 1
            emit("}")
        return "\n".join(lines)

    def sweep_function(self, app: KernelApply) -> str:
        """Sweep for one kernel application: acc += scale * kernel(t_read)."""
        kern = app.kernel
        nest = self.nests[kern.name]
        out = self.stencil.output
        _, halos_out = self._dims(out)
        halos = {out.name: halos_out}
        for aux in self.aux_tensors:
            halos[aux.name] = self._dims(aux)[1]

        def plane_of(tensor: str, time_offset: int) -> str:
            if tensor == out.name:
                return f"PLANE_{out.name}(t_read - {-time_offset})" \
                    if time_offset else f"PLANE_{out.name}(t_read)"
            return f"{tensor}_buf"

        dims = [lv.name for lv in kern.loop_vars]
        rendered = render_expr_c(kern.expr, plane_of, halos, dims)
        names = ["NZ", "NY", "NX"][-self.ndim:]
        acc_idx = dims[0]
        for d in range(1, self.ndim):
            acc_idx = f"({acc_idx}) * (long){names[d]} + ({dims[d]})"
        body = f"acc[{acc_idx}] += scale * {rendered};"
        nest_code = self._loop_nest_code(kern, nest, body, parallel_pragma=True)
        return (
            f"static void sweep_{kern.name}(long t_read, real *acc, "
            f"real scale) {{\n{nest_code}\n}}"
        )

    def main_function(self) -> str:
        out = self.stencil.output
        dims = ["k", "j", "i"][-self.ndim:]
        lines: List[str] = [
            "int main(int argc, char **argv) {",
            "  if (argc != 4) {",
            '    fprintf(stderr, "usage: %s <init.bin> <steps> <out.bin>\\n",'
            " argv[0]);",
            "    return 2;",
            "  }",
            f"  {out.name}_win = (real *)calloc((size_t)TWIN * PLANE_ELEMS,"
            " sizeof(real));",
        ]
        for aux in self.aux_tensors:
            lines.append(
                f"  {aux.name}_buf = (real *)calloc({self._plane_elems(aux)},"
                " sizeof(real));"
            )
        hist = self.stencil.required_time_window - 1
        lines += [
            '  FILE *fi = fopen(argv[1], "rb");',
            '  if (!fi) { perror("init"); return 1; }',
            "  real *tmp = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            f"  for (long t = 0; t < {hist}; t++) {{",
            "    if (fread(tmp, sizeof(real), VALID_ELEMS, fi) != "
            "(size_t)VALID_ELEMS) { fprintf(stderr, \"short init\\n\");"
            " return 1; }",
            f"    real *p = PLANE_{out.name}(t);",
        ]
        loop_open, loop_close, flat, shifted = self._valid_region_loops(2)
        lines += loop_open
        lines.append(
            "  " * (self.ndim + 2)
            + f"AT_{out.name}(p, {shifted}) = tmp[{flat}];"
        )
        lines += loop_close[::-1]
        lines += ["    fill_halo(p);", "  }"]
        for aux in self.aux_tensors:
            ahalo = self._dims(aux)[1]
            avalid = " * ".join(f"(long){s}" for s in aux.shape)
            lines += [
                f"  if (fread(tmp, sizeof(real), {avalid}, fi) != "
                f"(size_t)({avalid})) {{ fprintf(stderr, \"short aux\\n\");"
                " return 1; }",
            ]
            ashift = ", ".join(
                f"{v} + {h}" for v, h in zip(dims, ahalo)
            )
            aflat = dims[0]
            for d in range(1, aux.ndim):
                aflat = f"({aflat}) * {aux.shape[d]}L + ({dims[d]})"
            aopen = [
                "  " * (d + 1)
                + f"for (long {v} = 0; {v} < {aux.shape[d]}; {v}++) {{"
                for d, v in enumerate(dims)
            ]
            aclose = ["  " * (d + 1) + "}" for d in range(self.ndim)][::-1]
            lines += aopen
            lines.append(
                "  " * (self.ndim + 1)
                + f"AT_{aux.name}({aux.name}_buf, {ashift}) = tmp[{aflat}];"
            )
            lines += aclose
        lines += [
            "  fclose(fi);",
            "  long steps = strtol(argv[2], NULL, 10);",
            "  real *acc = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            f"  for (long t = {hist}; t < {hist} + steps; t++) {{",
        ]
        lines += self._timestep_body()
        lines += [
            "  }",
            f"  real *newest = PLANE_{out.name}({hist} + steps - 1);",
            "  if (steps == 0) newest = PLANE_" + out.name + f"({hist} - 1);",
        ]
        lines += loop_open
        lines.append(
            "  " * (self.ndim + 2)
            + f"tmp[{flat}] = AT_{out.name}(newest, {shifted});"
        )
        lines += loop_close[::-1]
        lines += [
            '  FILE *fo = fopen(argv[3], "wb");',
            '  if (!fo) { perror("out"); return 1; }',
            "  fwrite(tmp, sizeof(real), VALID_ELEMS, fo);",
            "  fclose(fo);",
            "  free(tmp); free(acc);",
            "  return 0;",
            "}",
        ]
        return "\n".join(lines)

    def generate(self, name: str) -> GeneratedCode:
        """Produce the complete single-file C program."""
        from ..obs import span

        with span("codegen.c", bundle=name):
            with span("codegen.c.header"):
                parts = [self.header(), self.halo_fill()]
            seen = set()
            for _, app in self.stencil.combination_terms():
                if app.kernel.name not in seen:
                    seen.add(app.kernel.name)
                    with span("codegen.c.sweep", kernel=app.kernel.name):
                        parts.append(self.sweep_function(app))
            with span("codegen.c.main"):
                parts.append(self.main_function())
            code = GeneratedCode(name=name, target="c")
            code.files[f"{name}.c"] = "\n\n".join(parts) + "\n"
        return code
