"""Single-CG athread stub for testing generated Sunway bundles.

sw5cc only exists on TaihuLight, so generated athread bundles ship
``msc_athread_stub.h``: a sequential implementation of the athread
subset the generated code uses, selected with ``-DMSC_ATHREAD_STUB``.
``athread_spawn`` runs the slave function once per virtual CPE
(``athread_get_id`` reporting 0..N-1), and ``athread_get``/``put``
become synchronous copies — so the *complete* generated structure
(SPM staging, round-robin tile mapping, DMA placement, reply counters)
executes on a plain CPU and its output can be compared against the
reference bit-for-bit.

The translation unit that owns the spawn loop (the master) must define
``MSC_ATHREAD_STUB_PRIMARY`` before including the header so the shared
CPE-id variable is defined exactly once.
"""

from __future__ import annotations

__all__ = ["ATHREAD_STUB_HEADER"]

ATHREAD_STUB_HEADER = """\
/* msc_athread_stub.h — sequential athread subset (-DMSC_ATHREAD_STUB).
 *
 * Supports what MSC-generated master/slave code uses: init/halt,
 * spawn/join (spawn runs the slave body once per virtual CPE),
 * athread_get_id, and synchronous athread_get/athread_put with reply
 * counters.  One translation unit defines MSC_ATHREAD_STUB_PRIMARY to
 * own the shared CPE-id variable.
 */
#ifndef MSC_ATHREAD_STUB_H
#define MSC_ATHREAD_STUB_H
#include <string.h>

#define __thread_local
#define PE_MODE 0

#ifdef MSC_ATHREAD_STUB_PRIMARY
int msc_cpe_current = 0;
#else
extern int msc_cpe_current;
#endif

static int athread_init(void) { return 0; }
static int athread_halt(void) { return 0; }
static int athread_join(void) { return 0; }

static int athread_get_id(int dummy) {
  (void)dummy;
  return msc_cpe_current;
}

static int athread_get(int mode, void *src, void *dst, long len,
                       void *reply, int r0, int r1, int r2) {
  (void)mode; (void)r0; (void)r1; (void)r2;
  memcpy(dst, src, (size_t)len);
  (*(volatile int *)reply)++;
  return 0;
}

static int athread_put(int mode, void *src, void *dst, long len,
                       void *reply, int r0, int r1) {
  (void)mode; (void)r0; (void)r1;
  memcpy(dst, src, (size_t)len);
  (*(volatile int *)reply)++;
  return 0;
}

/* spawn: run the slave entry once per virtual CPE, sequentially */
#define athread_spawn(f, arg) \\
  do { \\
    for (msc_cpe_current = 0; msc_cpe_current < MSC_NUM_CPES; \\
         msc_cpe_current++) \\
      slave_##f(arg); \\
    msc_cpe_current = 0; \\
  } while (0)

#endif /* MSC_ATHREAD_STUB_H */
"""
