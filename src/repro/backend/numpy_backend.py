"""Executable backend: runs stencil IR with vectorized numpy.

This is the substitution for actually compiling and running the
generated C on Sunway/Matrix hardware: the *same lowered schedule*
(tile enumeration, sliding time window, worker assignment) is executed
over real data, so every schedule transformation is observable and
testable for correctness (the paper's Sec. 5.1 methodology: generated
codes must match the serial codes to 1e-5 / 1e-10 relative error).

Two executors are provided:

- :func:`reference_run` — whole-domain, untiled, the "serial code";
- :class:`ScheduledExecutor` — executes tile-by-tile in the schedule's
  nest order with the sliding time window, exactly the structure the C
  backend emits.

Expression evaluation is fully vectorized: each
:class:`~repro.ir.expr.TensorAccess` becomes a shifted *view* of the
padded plane (no copies), and operator nodes map to numpy ufuncs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.expr import (
    CallFuncExpr,
    ConstExpr,
    Expr,
    IndexExpr,
    OperatorExpr,
    TensorAccess,
    VarExpr,
    KNOWN_FUNCS,
)
from ..ir.kernel import Kernel
from ..ir.stencil import Stencil
from ..ir.validate import validate_stencil
from ..schedule.schedule import Schedule
from ..schedule.timewindow import SlidingTimeWindow

__all__ = [
    "evaluate_kernel",
    "reference_run",
    "ScheduledExecutor",
    "fill_halo",
    "BOUNDARY_CONDITIONS",
]

BOUNDARY_CONDITIONS = ("zero", "periodic", "reflect")

_NUMPY_FUNCS = {name: getattr(np, KNOWN_FUNCS[name]) for name in KNOWN_FUNCS}


def fill_halo(padded: np.ndarray, halo: Sequence[int],
              boundary: str = "zero") -> None:
    """Fill the halo cells of a padded plane in place.

    ``zero`` writes zeros (Dirichlet), ``periodic`` wraps the opposite
    interior face, ``reflect`` mirrors the near interior.
    """
    if boundary not in BOUNDARY_CONDITIONS:
        raise ValueError(
            f"unknown boundary {boundary!r}; choose from "
            f"{BOUNDARY_CONDITIONS}"
        )
    ndim = padded.ndim
    for d, h in enumerate(halo):
        if h == 0:
            continue
        lo = [slice(None)] * ndim
        hi = [slice(None)] * ndim
        lo[d] = slice(0, h)
        hi[d] = slice(padded.shape[d] - h, padded.shape[d])
        if boundary == "zero":
            padded[tuple(lo)] = 0
            padded[tuple(hi)] = 0
        elif boundary == "periodic":
            src_lo = [slice(None)] * ndim
            src_hi = [slice(None)] * ndim
            src_lo[d] = slice(padded.shape[d] - 2 * h, padded.shape[d] - h)
            src_hi[d] = slice(h, 2 * h)
            padded[tuple(lo)] = padded[tuple(src_lo)]
            padded[tuple(hi)] = padded[tuple(src_hi)]
        else:  # reflect
            src_lo = [slice(None)] * ndim
            src_hi = [slice(None)] * ndim
            src_lo[d] = slice(2 * h - 1, h - 1, -1)
            src_hi[d] = slice(
                padded.shape[d] - h - 1, padded.shape[d] - 2 * h - 1, -1
            )
            padded[tuple(lo)] = padded[tuple(src_lo)]
            padded[tuple(hi)] = padded[tuple(src_hi)]


def _access_view(acc: TensorAccess, padded: np.ndarray,
                 halo: Sequence[int],
                 region: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Shifted view of ``padded`` covering ``region`` at the access offsets."""
    slices = []
    for (lo, hi), h, ix in zip(region, halo, acc.indices):
        start = h + lo + ix.offset
        stop = h + hi + ix.offset
        if start < 0 or stop > padded.shape[len(slices)]:
            raise IndexError(
                f"access {acc.tensor.name}{acc.offsets} leaves the padded "
                f"buffer for region {list(region)}; halo too small"
            )
        slices.append(slice(start, stop))
    return padded[tuple(slices)]


def _eval(expr: Expr, planes: Mapping[Tuple[str, int], np.ndarray],
          halos: Mapping[str, Sequence[int]],
          region: Sequence[Tuple[int, int]],
          scalars: Mapping[str, float]):
    if isinstance(expr, ConstExpr):
        return expr.value
    if isinstance(expr, TensorAccess):
        key = (expr.tensor.name, expr.time_offset)
        try:
            padded = planes[key]
        except KeyError:
            raise KeyError(
                f"no plane bound for tensor {expr.tensor.name!r} at time "
                f"offset {expr.time_offset}"
            ) from None
        return _access_view(expr, padded, halos[expr.tensor.name], region)
    if isinstance(expr, OperatorExpr):
        vals = [
            _eval(o, planes, halos, region, scalars) for o in expr.operands
        ]
        if expr.op == "neg":
            return -vals[0]
        if expr.op == "add":
            return vals[0] + vals[1]
        if expr.op == "sub":
            return vals[0] - vals[1]
        if expr.op == "mul":
            return vals[0] * vals[1]
        return vals[0] / vals[1]
    if isinstance(expr, CallFuncExpr):
        vals = [_eval(a, planes, halos, region, scalars) for a in expr.args]
        return _NUMPY_FUNCS[expr.func](*vals)
    if isinstance(expr, VarExpr):
        try:
            return scalars[expr.name]
        except KeyError:
            raise KeyError(
                f"free scalar {expr.name!r} has no bound value"
            ) from None
    if isinstance(expr, IndexExpr):
        raise TypeError(
            "bare index expressions outside tensor subscripts are not "
            "valid stencil values"
        )
    raise TypeError(f"cannot evaluate IR node {type(expr).__name__}")


def evaluate_kernel(kernel: Kernel,
                    planes: Mapping[Tuple[str, int], np.ndarray],
                    halos: Mapping[str, Sequence[int]],
                    region: Optional[Sequence[Tuple[int, int]]] = None,
                    scalars: Optional[Mapping[str, float]] = None) -> np.ndarray:
    """Evaluate one kernel over ``region`` of the valid domain.

    ``planes`` maps ``(tensor name, time offset)`` to *padded* arrays;
    ``halos`` maps tensor names to their halo widths; ``region`` is a
    list of per-dimension half-open bounds in valid-domain coordinates
    (default: the full domain of the first input tensor).
    """
    if region is None:
        first = kernel.input_tensors[0]
        region = [(0, s) for s in first.shape]
    result = _eval(kernel.expr, planes, halos, region, scalars or {})
    shape = tuple(hi - lo for lo, hi in region)
    return np.broadcast_to(np.asarray(result), shape)


def _seed_window(stencil: Stencil, init: Sequence[np.ndarray],
                 boundary: str) -> SlidingTimeWindow:
    window = SlidingTimeWindow(stencil.output)
    need = stencil.required_time_window - 1
    if len(init) != need:
        raise ValueError(
            f"stencil needs {need} initial plane(s) (for t=0..{need - 1}), "
            f"got {len(init)}"
        )
    for t, data in enumerate(init):
        arr = np.asarray(data, dtype=stencil.output.dtype.np_dtype)
        window.seed(t, arr)
        fill_halo(window.plane(t), stencil.output.halo, boundary)
    return window


def _static_planes(stencil: Stencil,
                   inputs: Optional[Mapping[str, np.ndarray]],
                   boundary: str = "zero"):
    """Padded planes for auxiliary (time-invariant) input tensors."""
    out_name = stencil.output.name
    planes: Dict[Tuple[str, int], np.ndarray] = {}
    halos: Dict[str, Sequence[int]] = {out_name: stencil.output.halo}
    needed = {}
    for kern in stencil.kernels:
        for tensor in kern.input_tensors:
            if tensor.name != out_name:
                needed[tensor.name] = tensor
    for name, tensor in needed.items():
        if inputs is None or name not in inputs:
            raise ValueError(
                f"kernel reads auxiliary tensor {name!r} but no data was "
                "provided for it"
            )
        halo = getattr(tensor, "halo", (0,) * tensor.ndim)
        data = np.asarray(inputs[name], dtype=tensor.dtype.np_dtype)
        if data.shape != tensor.shape:
            raise ValueError(
                f"input {name!r} has shape {data.shape}, expected "
                f"{tensor.shape}"
            )
        padded = np.zeros(
            tuple(s + 2 * h for s, h in zip(tensor.shape, halo)),
            dtype=tensor.dtype.np_dtype,
        )
        sl = tuple(slice(h, h + s) for h, s in zip(halo, tensor.shape))
        padded[sl] = data
        fill_halo(padded, halo, boundary)
        # static tensors answer every time offset with the same plane
        for off in (0, -1, -2, -3, -4):
            planes[(name, off)] = padded
        halos[name] = halo
    return planes, halos


def reference_run(stencil: Stencil,
                  init: Sequence[np.ndarray],
                  timesteps: int,
                  boundary: str = "zero",
                  inputs: Optional[Mapping[str, np.ndarray]] = None,
                  scalars: Optional[Mapping[str, float]] = None) -> np.ndarray:
    """The serial reference: whole-domain sweeps, no tiling.

    ``init`` supplies the initial history planes (t = 0 .. W-2); the
    run produces timesteps up to ``t = W-2+timesteps`` and returns the
    valid (halo-free) data of the newest plane.
    """
    if timesteps < 0:
        raise ValueError("timesteps must be >= 0")
    validate_stencil(stencil)
    window = _seed_window(stencil, init, boundary)
    static_planes, halos = _static_planes(stencil, inputs, boundary)
    out = stencil.output
    region = [(0, s) for s in out.shape]
    terms = stencil.combination_terms()

    t0 = stencil.required_time_window - 1
    for t in range(t0, t0 + timesteps):
        acc = np.zeros(out.shape, dtype=out.dtype.np_dtype)
        for scale, app in terms:
            planes = dict(static_planes)
            planes[(out.name, 0)] = window.plane(t + app.time_offset)
            # deeper kernel-internal offsets read further back
            for extra in range(1, out.time_window):
                held = t + app.time_offset - extra
                if held >= 0:
                    try:
                        planes[(out.name, -extra)] = window.plane(held)
                    except KeyError:
                        pass
            val = evaluate_kernel(app.kernel, planes, halos, region,
                                  scalars=scalars)
            acc += np.asarray(
                scale * val, dtype=out.dtype.np_dtype
            )
        newest = window.advance(t)
        window.interior_view(newest)[...] = acc
        fill_halo(newest, out.halo, boundary)
    return window.valid(window.newest).copy()


class ScheduledExecutor:
    """Tile-by-tile executor that follows a lowered schedule.

    Executes exactly the structure the C backends emit: tiles enumerated
    in the nest order of the outer axes, optionally restricted to one
    worker's round-robin share, with the sliding time window rotating
    between sweeps.  Results must match :func:`reference_run` — this is
    asserted throughout the test suite.
    """

    def __init__(self, stencil: Stencil, schedules: Mapping[str, Schedule],
                 boundary: str = "zero",
                 inputs: Optional[Mapping[str, np.ndarray]] = None,
                 scalars: Optional[Mapping[str, float]] = None,
                 threads: int = 1):
        validate_stencil(stencil)
        self.stencil = stencil
        self.boundary = boundary
        self.scalars = dict(scalars) if scalars else {}
        self.schedules = dict(schedules)
        for kern in stencil.kernels:
            if kern.name not in self.schedules:
                self.schedules[kern.name] = Schedule(kern)
        self.static_planes, self.halos = _static_planes(
            stencil, inputs, boundary
        )
        self.window: Optional[SlidingTimeWindow] = None
        self._nests = {
            name: sched.lower(stencil.output.shape)
            for name, sched in self.schedules.items()
        }
        # Honouring the schedule's ``parallel`` primitive in-process:
        # tiles of a Jacobi-style sweep are independent, and numpy
        # releases the GIL, so a thread pool over the round-robin
        # worker shares executes tiles concurrently.  (Memory-bound
        # stencils see little wall-clock gain — one numpy stream already
        # saturates bandwidth — but results are bit-identical and
        # compute-heavy kernels, e.g. with transcendental calls, do
        # scale.)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self._pool = None
        if threads > 1:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=threads)

    def initialize(self, init: Sequence[np.ndarray]) -> None:
        self.window = _seed_window(self.stencil, init, self.boundary)

    def step(self) -> None:
        """Advance the window by one timestep."""
        from ..obs import span

        if self.window is None:
            raise RuntimeError("call initialize() before step()")
        out = self.stencil.output
        window = self.window
        t = window.newest + 1
        terms = self.stencil.combination_terms()
        acc = np.zeros(out.shape, dtype=out.dtype.np_dtype)
        with span("runtime.kernel_eval", t=t):
            self._step_terms(terms, window, t, acc, out)
        newest = window.advance(t)
        window.interior_view(newest)[...] = acc
        fill_halo(newest, out.halo, self.boundary)

    def _step_terms(self, terms, window, t, acc, out) -> None:
        for scale, app in terms:
            nest = self._nests[app.kernel.name]
            planes = dict(self.static_planes)
            planes[(out.name, 0)] = window.plane(t + app.time_offset)
            for extra in range(1, out.time_window):
                held = t + app.time_offset - extra
                if held >= 0:
                    try:
                        planes[(out.name, -extra)] = window.plane(held)
                    except KeyError:
                        pass
            def do_tile(tile, _app=app, _planes=planes, _scale=scale):
                region = [
                    tile.extent(v.name) for v in _app.kernel.loop_vars
                ]
                val = evaluate_kernel(
                    _app.kernel, _planes, self.halos, region,
                    scalars=self.scalars,
                )
                sl = tuple(slice(lo, hi) for lo, hi in region)
                # tiles are disjoint, so this in-place update is
                # race-free across workers
                acc[sl] += np.asarray(
                    _scale * val, dtype=out.dtype.np_dtype
                )

            if self._pool is not None:
                futures = [
                    self._pool.submit(
                        lambda w: [do_tile(tl) for tl in
                                   nest.tiles_for_worker(w, self.threads)],
                        worker,
                    )
                    for worker in range(self.threads)
                ]
                for fut in futures:
                    fut.result()
            else:
                for tile in nest.iter_tiles():
                    do_tile(tile)

    def run(self, init: Sequence[np.ndarray], timesteps: int) -> np.ndarray:
        """Initialize, run ``timesteps`` sweeps, return the newest plane."""
        self.initialize(init)
        for _ in range(timesteps):
            self.step()
        return self.result()

    def result(self) -> np.ndarray:
        if self.window is None:
            raise RuntimeError("executor has not run yet")
        return self.window.valid(self.window.newest).copy()
