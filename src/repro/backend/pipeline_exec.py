"""Executors for multi-stage pipelines: serial and distributed.

Per timestep, stages run in order; each stage's freshly produced plane
is halo-filled (serial: boundary condition; distributed: exchange +
boundary) before later stages — or the next timestep — read it.

Plane binding implements the stage-reference semantics documented in
:mod:`repro.ir.pipeline`:

- accesses to the stage's *own* output map through the application
  offset: ``(name, o) -> plane(t + app_offset + o)``;
- accesses to *other stages'* outputs are relative to the current step:
  ``(name, o) -> plane(t + o)``;
- auxiliary (read-only) tensors always bind their static plane.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..comm.decomposition import decompose
from ..comm.halo import HaloSpec
from ..ir.pipeline import StagePipeline
from ..ir.stencil import Stencil
from ..runtime.simmpi import CartComm, run_ranks
from .numpy_backend import evaluate_kernel, fill_halo

__all__ = ["PipelineExecutor", "distributed_pipeline_run"]


class _TensorStore:
    """Rotating padded planes for every pipeline tensor (one rank)."""

    def __init__(self, pipeline: StagePipeline,
                 sub_shape: Optional[Tuple[int, ...]] = None):
        self.pipeline = pipeline
        self.planes: Dict[str, np.ndarray] = {}
        self.held: Dict[str, List[int]] = {}
        self.halos: Dict[str, Tuple[int, ...]] = {}
        shape = sub_shape or pipeline.shape
        self.shape = shape
        for tensor in pipeline.outputs:
            w = tensor.time_window
            padded = tuple(
                s + 2 * h for s, h in zip(shape, tensor.halo)
            )
            self.planes[tensor.name] = np.zeros(
                (w, *padded), dtype=tensor.dtype.np_dtype
            )
            self.held[tensor.name] = [-(10 ** 9)] * w
            self.halos[tensor.name] = tensor.halo

    def window(self, name: str) -> int:
        return self.planes[name].shape[0]

    def plane(self, name: str, t: int) -> np.ndarray:
        w = self.window(name)
        slot = t % w
        if self.held[name][slot] != t:
            raise KeyError(f"{name!r} has no live plane for step {t}")
        return self.planes[name][slot]

    def has_plane(self, name: str, t: int) -> bool:
        return t >= 0 and self.held[name][t % self.window(name)] == t

    def claim(self, name: str, t: int) -> np.ndarray:
        slot = t % self.window(name)
        self.held[name][slot] = t
        return self.planes[name][slot]

    def interior(self, name: str, padded: np.ndarray) -> np.ndarray:
        halo = self.halos[name]
        return padded[tuple(
            slice(h, h + s) for h, s in zip(halo, self.shape)
        )]


def _bind_planes(store: _TensorStore, stage: Stencil, app, t: int,
                 static_planes: Mapping) -> Dict:
    """Plane bindings for one kernel application of one stage."""
    own = stage.output.name
    planes = dict(static_planes)
    outputs = {tensor.name for tensor in store.pipeline.outputs}
    for acc in app.kernel.accesses:
        name = acc.tensor.name
        key = (name, acc.time_offset)
        if key in planes:
            continue
        if name == own:
            step = t + app.time_offset + acc.time_offset
        elif name in outputs:
            step = t + acc.time_offset  # stage reference
        else:
            continue  # auxiliary: already in static_planes
        planes[key] = store.plane(name, step)
    return planes


class PipelineExecutor:
    """Serial executor for a :class:`StagePipeline`."""

    def __init__(self, pipeline: StagePipeline, boundary: str = "zero",
                 inputs: Optional[Mapping[str, np.ndarray]] = None):
        if boundary not in ("zero", "periodic"):
            raise ValueError(
                f"pipelines support zero/periodic, got {boundary!r}"
            )
        self.pipeline = pipeline
        self.boundary = boundary
        self.store = _TensorStore(pipeline)
        self.static_planes: Dict = {}
        for name, tensor in pipeline.aux_tensors().items():
            if inputs is None or name not in inputs:
                raise ValueError(
                    f"pipeline reads auxiliary tensor {name!r} but no "
                    "data was provided"
                )
            halo = getattr(tensor, "halo", (0,) * tensor.ndim)
            padded = np.zeros(
                tuple(s + 2 * h for s, h in zip(tensor.shape, halo)),
                dtype=tensor.dtype.np_dtype,
            )
            padded[tuple(
                slice(h, h + s) for h, s in zip(halo, tensor.shape)
            )] = np.asarray(inputs[name], dtype=tensor.dtype.np_dtype)
            fill_halo(padded, halo, boundary)
            for off in (0, -1, -2, -3, -4):
                self.static_planes[(name, off)] = padded
            self.store.halos[name] = tuple(halo)
        self.t = -1

    def initialize(self, seeds: Mapping[str, Sequence[np.ndarray]]) -> None:
        """Seed history planes: ``{tensor: [plane(t=-k) ... plane(t=-1)]}``.

        The first computed step is t=0; a tensor needing ``k`` history
        planes gets them at steps -k .. -1 (oldest first).  Seeds are
        stored at those negative steps internally by shifting: we seed
        at steps ``0..k-1`` and start computing at ``t=k_max``.
        """
        need = self.pipeline.required_history()
        k_max = max(need.values(), default=0)
        for name, k in need.items():
            given = list(seeds.get(name, []))
            if len(given) != k:
                raise ValueError(
                    f"tensor {name!r} needs {k} seed plane(s), got "
                    f"{len(given)}"
                )
            # align so the newest seed sits at step k_max - 1
            start = k_max - k
            for idx, data in enumerate(given):
                plane = self.store.claim(name, start + idx)
                plane.fill(0)
                self.store.interior(name, plane)[...] = np.asarray(
                    data, dtype=plane.dtype
                )
                fill_halo(plane, self.store.halos[name], self.boundary)
        self.t = k_max - 1

    def step(self) -> None:
        t = self.t + 1
        for stage in self.pipeline.stages:
            out = stage.output
            acc = np.zeros(self.store.shape, dtype=out.dtype.np_dtype)
            region = [(0, s) for s in self.store.shape]
            for scale, app in stage.combination_terms():
                planes = _bind_planes(
                    self.store, stage, app, t, self.static_planes
                )
                val = evaluate_kernel(
                    app.kernel, planes, self.store.halos, region
                )
                acc += np.asarray(scale * val, dtype=acc.dtype)
            plane = self.store.claim(out.name, t)
            self.store.interior(out.name, plane)[...] = acc
            fill_halo(plane, self.store.halos[out.name], self.boundary)
        self.t = t

    def run(self, seeds: Mapping[str, Sequence[np.ndarray]],
            timesteps: int) -> Dict[str, np.ndarray]:
        """Initialize, run, and return each stage's newest valid plane."""
        self.initialize(seeds)
        for _ in range(timesteps):
            self.step()
        return self.results()

    def results(self) -> Dict[str, np.ndarray]:
        out = {}
        for tensor in self.pipeline.outputs:
            plane = self.store.plane(tensor.name, self.t)
            out[tensor.name] = self.store.interior(
                tensor.name, plane
            ).copy()
        return out


def distributed_pipeline_run(
    pipeline: StagePipeline,
    seeds: Mapping[str, Sequence[np.ndarray]],
    timesteps: int,
    grid: Sequence[int],
    boundary: str = "zero",
    inputs: Optional[Mapping[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Run a pipeline over an MPI grid; returns gathered global results.

    Each stage's fresh plane is halo-exchanged before the next stage
    runs, so cross-stage spatial reads see neighbour data — one
    exchange per stage per timestep, exactly what generated multi-stage
    code does.
    """
    from ..comm.library import create_exchanger
    from ..runtime.executor import _zero_unowned_edges

    grid = tuple(int(g) for g in grid)
    if len(grid) != pipeline.ndim:
        raise ValueError(
            f"MPI grid is {len(grid)}-D for a {pipeline.ndim}-D pipeline"
        )
    nprocs = 1
    for g in grid:
        nprocs *= g
    subdomains = decompose(pipeline.shape, grid)
    periods = tuple(boundary == "periodic" for _ in grid)
    aux = pipeline.aux_tensors()
    for name in aux:
        if inputs is None or name not in inputs:
            raise ValueError(f"missing data for auxiliary tensor {name!r}")

    def rank_main(comm: CartComm):
        sd = subdomains[comm.rank]
        store = _TensorStore(pipeline, sub_shape=sd.shape)
        specs = {
            tensor.name: HaloSpec(sd.shape, tensor.halo)
            for tensor in pipeline.outputs
        }
        exchangers = {
            name: create_exchanger("async", comm, spec)
            for name, spec in specs.items()
        }

        def refresh(name: str, plane: np.ndarray) -> None:
            _zero_unowned_edges(plane, specs[name], comm)
            exchangers[name].exchange(plane)

        static_planes: Dict = {}
        for name, tensor in aux.items():
            halo = getattr(tensor, "halo", (0,) * tensor.ndim)
            spec = HaloSpec(sd.shape, tuple(halo))
            padded = np.zeros(spec.padded_shape,
                              dtype=tensor.dtype.np_dtype)
            padded[spec.interior()] = np.asarray(
                inputs[name]
            )[sd.slices()]
            if any(h > 0 for h in halo):
                ex = create_exchanger("async", comm, spec)
                _zero_unowned_edges(padded, spec, comm)
                ex.exchange(padded)
            for off in (0, -1, -2, -3, -4):
                static_planes[(name, off)] = padded
            store.halos[name] = tuple(halo)

        need = pipeline.required_history()
        k_max = max(need.values(), default=0)
        for name, k in need.items():
            given = list(seeds.get(name, []))
            start = k_max - k
            for idx, data in enumerate(given):
                plane = store.claim(name, start + idx)
                plane.fill(0)
                store.interior(name, plane)[...] = np.asarray(
                    data
                )[sd.slices()]
                refresh(name, plane)
        t = k_max - 1
        for _ in range(timesteps):
            t += 1
            for stage in pipeline.stages:
                out = stage.output
                acc = np.zeros(sd.shape, dtype=out.dtype.np_dtype)
                region = [(0, s) for s in sd.shape]
                for scale, app in stage.combination_terms():
                    planes = _bind_planes(store, stage, app, t,
                                          static_planes)
                    val = evaluate_kernel(
                        app.kernel, planes, store.halos, region
                    )
                    acc += np.asarray(scale * val, dtype=acc.dtype)
                plane = store.claim(out.name, t)
                store.interior(out.name, plane)[...] = acc
                refresh(out.name, plane)
        local = {
            tensor.name: store.interior(
                tensor.name, store.plane(tensor.name, t)
            ).copy()
            for tensor in pipeline.outputs
        }
        pieces = comm.gather((comm.rank, local), root=0)
        if comm.rank != 0:
            return None
        result = {
            tensor.name: np.zeros(pipeline.shape,
                                  dtype=tensor.dtype.np_dtype)
            for tensor in pipeline.outputs
        }
        for rank, data in pieces:
            sub = subdomains[int(rank)]
            for name, arr in data.items():
                result[name][sub.slices()] = arr
        return result

    results = run_ranks(nprocs, rank_main, cart_dims=grid,
                        periods=periods)
    return results[0]
