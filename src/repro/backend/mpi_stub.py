"""Single-process MPI stub header for testing generated MPI bundles.

mpicc is not available off-platform, so generated distributed bundles
ship with ``msc_mpi_stub.h``: a minimal, single-rank MPI implementation
(self-delivering message queue) selected with ``-DMSC_MPI_STUB``.  On a
1×..×1 periodic process grid the halo exchange sends both strips of
every dimension *to itself*, so compiling the bundle against the stub
and running it exercises the complete pack → send → receive → unpack
protocol — and the output must match the serial reference exactly.
"""

from __future__ import annotations

__all__ = ["MPI_STUB_HEADER"]

MPI_STUB_HEADER = """\
/* msc_mpi_stub.h — single-process MPI subset for -DMSC_MPI_STUB builds.
 *
 * Supports exactly what the generated code + msc_comm.c use, on one
 * rank: cart topology of total size 1, self-delivering nonblocking
 * messages (matched by tag, FIFO), and trivial collectives.
 */
#ifndef MSC_MPI_STUB_H
#define MSC_MPI_STUB_H
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

typedef int MPI_Comm;
typedef int MPI_Request;
typedef int MPI_Datatype;
typedef struct { int MPI_SOURCE, MPI_TAG; } MPI_Status;

#define MPI_COMM_WORLD 0
#define MPI_DOUBLE 1
#define MPI_SUCCESS 0
#define MPI_PROC_NULL (-1)
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)

#define MSC_STUB_MAX_MSGS 64
#define MSC_STUB_MAX_DIMS 3

static struct {
  int used;
  int tag;
  long count;
  double *data;
} msc_stub_queue[MSC_STUB_MAX_MSGS];

static struct {
  int used;
  int is_recv;
  int tag;
  long count;
  double *buf;
} msc_stub_reqs[MSC_STUB_MAX_MSGS];

static int msc_stub_dims[MSC_STUB_MAX_DIMS];
static int msc_stub_periods[MSC_STUB_MAX_DIMS];
static int msc_stub_ndim = 0;

static int MPI_Init(int *argc, char ***argv) {
  (void)argc; (void)argv;
  memset(msc_stub_queue, 0, sizeof(msc_stub_queue));
  memset(msc_stub_reqs, 0, sizeof(msc_stub_reqs));
  return MPI_SUCCESS;
}
static int MPI_Finalize(void) { return MPI_SUCCESS; }
static int MPI_Abort(MPI_Comm c, int code) {
  (void)c; exit(code);
}
static int MPI_Comm_rank(MPI_Comm c, int *rank) {
  (void)c; *rank = 0; return MPI_SUCCESS;
}
static int MPI_Comm_size(MPI_Comm c, int *size) {
  (void)c; *size = 1; return MPI_SUCCESS;
}
static int MPI_Comm_free(MPI_Comm *c) { (void)c; return MPI_SUCCESS; }

static int MPI_Cart_create(MPI_Comm base, int ndim, const int *dims,
                           const int *periods, int reorder,
                           MPI_Comm *cart) {
  (void)base; (void)reorder;
  long total = 1;
  for (int d = 0; d < ndim; d++) total *= dims[d];
  if (total != 1) {
    fprintf(stderr, "msc_mpi_stub: single-rank stub, grid must be 1\\n");
    exit(3);
  }
  msc_stub_ndim = ndim;
  for (int d = 0; d < ndim; d++) {
    msc_stub_dims[d] = dims[d];
    msc_stub_periods[d] = periods[d];
  }
  *cart = 1;
  return MPI_SUCCESS;
}
static int MPI_Cart_coords(MPI_Comm c, int rank, int ndim, int *coords) {
  (void)c; (void)rank;
  for (int d = 0; d < ndim; d++) coords[d] = 0;
  return MPI_SUCCESS;
}
static int MPI_Cart_shift(MPI_Comm c, int dim, int disp, int *lo,
                          int *hi) {
  (void)c; (void)disp;
  if (msc_stub_periods[dim]) { *lo = 0; *hi = 0; }
  else { *lo = MPI_PROC_NULL; *hi = MPI_PROC_NULL; }
  return MPI_SUCCESS;
}

static int msc_stub_enqueue(const double *buf, long count, int tag) {
  for (int q = 0; q < MSC_STUB_MAX_MSGS; q++) {
    if (!msc_stub_queue[q].used) {
      msc_stub_queue[q].used = 1;
      msc_stub_queue[q].tag = tag;
      msc_stub_queue[q].count = count;
      msc_stub_queue[q].data =
          (double *)malloc(sizeof(double) * count);
      memcpy(msc_stub_queue[q].data, buf, sizeof(double) * count);
      return MPI_SUCCESS;
    }
  }
  fprintf(stderr, "msc_mpi_stub: message queue overflow\\n");
  exit(3);
}
static int msc_stub_dequeue(double *buf, long count, int tag) {
  for (int q = 0; q < MSC_STUB_MAX_MSGS; q++) {
    if (msc_stub_queue[q].used && msc_stub_queue[q].tag == tag) {
      if (msc_stub_queue[q].count != count) {
        fprintf(stderr, "msc_mpi_stub: size mismatch tag %d\\n", tag);
        exit(3);
      }
      memcpy(buf, msc_stub_queue[q].data, sizeof(double) * count);
      free(msc_stub_queue[q].data);
      msc_stub_queue[q].used = 0;
      return MPI_SUCCESS;
    }
  }
  return 1; /* not yet available */
}

static int MPI_Isend(const void *buf, long count, MPI_Datatype dt,
                     int dest, int tag, MPI_Comm c, MPI_Request *req) {
  (void)dt; (void)dest; (void)c;
  msc_stub_enqueue((const double *)buf, count, tag);
  *req = -1; /* completed immediately (buffered) */
  return MPI_SUCCESS;
}
static int MPI_Irecv(void *buf, long count, MPI_Datatype dt, int src,
                     int tag, MPI_Comm c, MPI_Request *req) {
  (void)dt; (void)src; (void)c;
  for (int r = 0; r < MSC_STUB_MAX_MSGS; r++) {
    if (!msc_stub_reqs[r].used) {
      msc_stub_reqs[r].used = 1;
      msc_stub_reqs[r].is_recv = 1;
      msc_stub_reqs[r].tag = tag;
      msc_stub_reqs[r].count = count;
      msc_stub_reqs[r].buf = (double *)buf;
      *req = r;
      return MPI_SUCCESS;
    }
  }
  fprintf(stderr, "msc_mpi_stub: request table overflow\\n");
  exit(3);
}
static int MPI_Waitall(int n, MPI_Request *reqs, MPI_Status *st) {
  (void)st;
  for (int k = 0; k < n; k++) {
    int r = reqs[k];
    if (r < 0) continue; /* completed send */
    if (!msc_stub_reqs[r].used) continue;
    if (msc_stub_dequeue(msc_stub_reqs[r].buf, msc_stub_reqs[r].count,
                         msc_stub_reqs[r].tag) != MPI_SUCCESS) {
      fprintf(stderr, "msc_mpi_stub: deadlock (no message tag %d)\\n",
              msc_stub_reqs[r].tag);
      exit(3);
    }
    msc_stub_reqs[r].used = 0;
  }
  return MPI_SUCCESS;
}
static int MPI_Send(const void *buf, long count, MPI_Datatype dt,
                    int dest, int tag, MPI_Comm c) {
  (void)dt; (void)dest; (void)c;
  return msc_stub_enqueue((const double *)buf, count, tag);
}
static int MPI_Recv(void *buf, long count, MPI_Datatype dt, int src,
                    int tag, MPI_Comm c, MPI_Status *st) {
  (void)dt; (void)src; (void)c; (void)st;
  if (msc_stub_dequeue((double *)buf, count, tag) != MPI_SUCCESS) {
    fprintf(stderr, "msc_mpi_stub: Recv with no message (tag %d)\\n",
            tag);
    exit(3);
  }
  return MPI_SUCCESS;
}
#endif /* MSC_MPI_STUB_H */
"""
