"""Distributed (MPI) C code generation + the communication library in C.

Sec. 3/4.4: "the compilation of the MSC DSL identifies the size and
location of the halo regions ... then it invokes the corresponding APIs
in the communication library" and the library itself is shipped as a
plugin.  This module emits exactly that:

- ``msc_comm.h`` / ``msc_comm.c`` — the C twin of :mod:`repro.comm`:
  Cartesian setup, balanced decomposition, and the asynchronous
  dimension-phased halo exchange (pack → ``MPI_Isend``/``MPI_Irecv`` →
  unpack), generic over 1–3 dimensions;
- ``<name>_mpi.c`` — the stencil program: rank 0 reads and scatters the
  global planes, every rank sweeps its sub-domain and calls
  ``msc_exchange`` after committing each plane, rank 0 gathers and
  writes the result;
- a Makefile using ``mpicc``.

mpicc/mpi.h are not available in this environment, so the bundle is
validated structurally (and kept faithful: the Python communication
library implements the same protocol and *is* executed in the tests).
"""

from __future__ import annotations

from typing import List, Mapping

from ..ir.stencil import Stencil
from ..ir.validate import validate_stencil
from ..schedule.schedule import Schedule
from .c_codegen import GeneratedCode, render_expr_c

__all__ = ["MPICodeGenerator", "generate_mpi", "COMM_HEADER", "COMM_SOURCE"]

COMM_HEADER = """\
/* msc_comm.h — the MSC communication library (C interface).
 *
 * Pluggable halo-exchange library (paper Sec. 4.4): domain
 * decomposition, asynchronous dimension-phased halo exchange, and
 * result gathering.  Alternative exchangers (e.g. a GCL-style or
 * master-coordinated strategy) can re-implement this interface without
 * touching the generated stencil code.
 */
#ifndef MSC_COMM_H
#define MSC_COMM_H
#ifdef MSC_MPI_STUB
#include "msc_mpi_stub.h"
#else
#include <mpi.h>
#endif

#define MSC_MAX_DIMS 3

typedef struct {
  MPI_Comm cart;           /* Cartesian communicator                 */
  int ndim;                /* spatial dimensionality (1..3)          */
  int dims[MSC_MAX_DIMS];  /* process grid                           */
  int periods[MSC_MAX_DIMS];
  int coords[MSC_MAX_DIMS];
  int rank, size;
  long global[MSC_MAX_DIMS];  /* global valid extents                */
  long lo[MSC_MAX_DIMS];      /* this rank's sub-domain [lo, hi)     */
  long hi[MSC_MAX_DIMS];
  long halo[MSC_MAX_DIMS];    /* halo width per dimension            */
  long padded[MSC_MAX_DIMS];  /* local padded extents                */
} msc_comm_t;

/* Create the Cartesian topology and the balanced decomposition
 * (extents split to within one cell, as in the reference library). */
int msc_comm_init(msc_comm_t *ctx, MPI_Comm base, int ndim,
                  const int *dims, const int *periods,
                  const long *global, const long *halo);

/* Asynchronous halo exchange of one padded plane: for each dimension
 * in order, pack the inner-halo strips, post MPI_Irecv/MPI_Isend with
 * both neighbours, wait, unpack into the ghost strips.  Dimension
 * phases deliver edge/corner data with 2*ndim messages per rank. */
int msc_exchange(msc_comm_t *ctx, double *plane);

/* Zero the ghost strips on sides with no neighbour (global Dirichlet
 * boundary); a no-op on periodic grids. */
void msc_fill_boundary(msc_comm_t *ctx, double *plane);

/* Gather every rank's valid sub-domain into the global array on
 * rank 0 (NULL elsewhere). */
int msc_gather(msc_comm_t *ctx, const double *plane, double *global_out);

/* Scatter a rank-0 global plane into every rank's padded plane. */
int msc_scatter(msc_comm_t *ctx, const double *global_in, double *plane);

void msc_comm_free(msc_comm_t *ctx);
#endif /* MSC_COMM_H */
"""

COMM_SOURCE = """\
/* msc_comm.c — asynchronous dimension-phased halo exchange (MPI). */
#include "msc_comm.h"
#include <stdlib.h>
#include <string.h>

static long padded_index(const msc_comm_t *c, const long *idx) {
  long flat = 0;
  for (int d = 0; d < c->ndim; d++) flat = flat * c->padded[d] + idx[d];
  return flat;
}

int msc_comm_init(msc_comm_t *ctx, MPI_Comm base, int ndim,
                  const int *dims, const int *periods,
                  const long *global, const long *halo) {
  ctx->ndim = ndim;
  for (int d = 0; d < ndim; d++) {
    ctx->dims[d] = dims[d];
    ctx->periods[d] = periods[d];
    ctx->global[d] = global[d];
    ctx->halo[d] = halo[d];
  }
  MPI_Cart_create(base, ndim, ctx->dims, ctx->periods, 0, &ctx->cart);
  MPI_Comm_rank(ctx->cart, &ctx->rank);
  MPI_Comm_size(ctx->cart, &ctx->size);
  MPI_Cart_coords(ctx->cart, ctx->rank, ndim, ctx->coords);
  for (int d = 0; d < ndim; d++) {
    long base_sz = global[d] / dims[d];
    long extra = global[d] % dims[d];
    long c = ctx->coords[d];
    ctx->lo[d] = c * base_sz + (c < extra ? c : extra);
    ctx->hi[d] = ctx->lo[d] + base_sz + (c < extra ? 1 : 0);
    ctx->padded[d] = (ctx->hi[d] - ctx->lo[d]) + 2 * halo[d];
  }
  return MPI_SUCCESS;
}

/* strip geometry for (dim, dir): send inner-halo, recv ghost strip */
static void strip_bounds(const msc_comm_t *c, int dim, int dir, int send,
                         long *lo, long *hi) {
  for (int d = 0; d < c->ndim; d++) { lo[d] = 0; hi[d] = c->padded[d]; }
  long h = c->halo[dim];
  long n = c->hi[dim] - c->lo[dim];
  if (send) {
    if (dir < 0) { lo[dim] = h; hi[dim] = 2 * h; }
    else         { lo[dim] = n; hi[dim] = n + h; }
  } else {
    if (dir < 0) { lo[dim] = 0; hi[dim] = h; }
    else         { lo[dim] = n + h; hi[dim] = n + 2 * h; }
  }
}

static long strip_count(const msc_comm_t *c, const long *lo,
                        const long *hi) {
  long n = 1;
  for (int d = 0; d < c->ndim; d++) n *= hi[d] - lo[d];
  return n;
}

static void copy_strip(const msc_comm_t *c, double *plane,
                       const long *lo, const long *hi, double *buf,
                       int pack) {
  long idx[MSC_MAX_DIMS];
  long pos = 0;
  /* up to three nested loops, inactive dims collapse to one pass */
  for (long a = lo[0]; a < (c->ndim > 0 ? hi[0] : lo[0] + 1); a++) {
    idx[0] = a;
    for (long b = (c->ndim > 1 ? lo[1] : 0);
         b < (c->ndim > 1 ? hi[1] : 1); b++) {
      if (c->ndim > 1) idx[1] = b;
      for (long g = (c->ndim > 2 ? lo[2] : 0);
           g < (c->ndim > 2 ? hi[2] : 1); g++) {
        if (c->ndim > 2) idx[2] = g;
        long flat = padded_index(c, idx);
        if (pack) buf[pos++] = plane[flat];
        else      plane[flat] = buf[pos++];
      }
    }
  }
}

int msc_exchange(msc_comm_t *ctx, double *plane) {
  for (int d = 0; d < ctx->ndim; d++) {
    if (ctx->halo[d] == 0) continue;
    int lo_nb, hi_nb;
    MPI_Cart_shift(ctx->cart, d, 1, &lo_nb, &hi_nb);
    long slo[MSC_MAX_DIMS], shi[MSC_MAX_DIMS];
    long rlo[MSC_MAX_DIMS], rhi[MSC_MAX_DIMS];
    MPI_Request reqs[4];
    int nreq = 0;
    double *sbuf[2] = {NULL, NULL}, *rbuf[2] = {NULL, NULL};
    int dirs[2] = {-1, +1};
    int peers[2] = {lo_nb, hi_nb};
    long counts[2];
    for (int s = 0; s < 2; s++) {
      if (peers[s] == MPI_PROC_NULL) continue;
      strip_bounds(ctx, d, dirs[s], 0, rlo, rhi);
      counts[s] = strip_count(ctx, rlo, rhi);
      rbuf[s] = (double *)malloc(sizeof(double) * counts[s]);
      MPI_Irecv(rbuf[s], counts[s], MPI_DOUBLE, peers[s],
                4096 + 2 * d + s, ctx->cart, &reqs[nreq++]);
    }
    for (int s = 0; s < 2; s++) {
      if (peers[s] == MPI_PROC_NULL) continue;
      strip_bounds(ctx, d, dirs[s], 1, slo, shi);
      long n = strip_count(ctx, slo, shi);
      sbuf[s] = (double *)malloc(sizeof(double) * n);
      copy_strip(ctx, plane, slo, shi, sbuf[s], 1);
      MPI_Isend(sbuf[s], n, MPI_DOUBLE, peers[s],
                4096 + 2 * d + (1 - s), ctx->cart, &reqs[nreq++]);
    }
    MPI_Waitall(nreq, reqs, MPI_STATUSES_IGNORE);
    for (int s = 0; s < 2; s++) {
      if (peers[s] == MPI_PROC_NULL) continue;
      strip_bounds(ctx, d, dirs[s], 0, rlo, rhi);
      copy_strip(ctx, plane, rlo, rhi, rbuf[s], 0);
      free(rbuf[s]);
      free(sbuf[s]);
    }
  }
  return MPI_SUCCESS;
}

void msc_fill_boundary(msc_comm_t *ctx, double *plane) {
  for (int d = 0; d < ctx->ndim; d++) {
    if (ctx->halo[d] == 0) continue;
    int lo_nb, hi_nb;
    MPI_Cart_shift(ctx->cart, d, 1, &lo_nb, &hi_nb);
    long lo[MSC_MAX_DIMS], hi[MSC_MAX_DIMS];
    double zero = 0.0;
    if (lo_nb == MPI_PROC_NULL) {
      strip_bounds(ctx, d, -1, 0, lo, hi);
      long n = strip_count(ctx, lo, hi);
      double *buf = (double *)calloc(n, sizeof(double));
      copy_strip(ctx, plane, lo, hi, buf, 0);
      free(buf);
    }
    if (hi_nb == MPI_PROC_NULL) {
      strip_bounds(ctx, d, +1, 0, lo, hi);
      long n = strip_count(ctx, lo, hi);
      double *buf = (double *)calloc(n, sizeof(double));
      copy_strip(ctx, plane, lo, hi, buf, 0);
      free(buf);
    }
    (void)zero;
  }
}

int msc_gather(msc_comm_t *ctx, const double *plane, double *global_out) {
  /* each rank streams its valid rows to rank 0 (simple, correct) */
  long lo[MSC_MAX_DIMS], hi[MSC_MAX_DIMS];
  for (int d = 0; d < ctx->ndim; d++) {
    lo[d] = ctx->halo[d];
    hi[d] = ctx->halo[d] + (ctx->hi[d] - ctx->lo[d]);
  }
  long n = strip_count(ctx, lo, hi);
  double *local = (double *)malloc(sizeof(double) * n);
  copy_strip(ctx, (double *)plane, lo, hi, local, 1);
  if (ctx->rank != 0) {
    MPI_Send(local, n, MPI_DOUBLE, 0, 9000, ctx->cart);
  } else {
    for (int r = 0; r < ctx->size; r++) {
      /* bounds of rank r */
      int coords[MSC_MAX_DIMS];
      MPI_Cart_coords(ctx->cart, r, ctx->ndim, coords);
      long rlo[MSC_MAX_DIMS], rhi[MSC_MAX_DIMS], rn = 1;
      for (int d = 0; d < ctx->ndim; d++) {
        long base_sz = ctx->global[d] / ctx->dims[d];
        long extra = ctx->global[d] % ctx->dims[d];
        long c = coords[d];
        rlo[d] = c * base_sz + (c < extra ? c : extra);
        rhi[d] = rlo[d] + base_sz + (c < extra ? 1 : 0);
        rn *= rhi[d] - rlo[d];
      }
      double *piece = local;
      if (r != 0) {
        piece = (double *)malloc(sizeof(double) * rn);
        MPI_Recv(piece, rn, MPI_DOUBLE, r, 9000, ctx->cart,
                 MPI_STATUS_IGNORE);
      }
      /* copy into the global array */
      long pos = 0, idx[MSC_MAX_DIMS];
      for (long a = rlo[0]; a < rhi[0]; a++) {
        idx[0] = a;
        for (long b = (ctx->ndim > 1 ? rlo[1] : 0);
             b < (ctx->ndim > 1 ? rhi[1] : 1); b++) {
          if (ctx->ndim > 1) idx[1] = b;
          for (long g = (ctx->ndim > 2 ? rlo[2] : 0);
               g < (ctx->ndim > 2 ? rhi[2] : 1); g++) {
            if (ctx->ndim > 2) idx[2] = g;
            long flat = 0;
            for (int d = 0; d < ctx->ndim; d++)
              flat = flat * ctx->global[d] + idx[d];
            global_out[flat] = piece[pos++];
          }
        }
      }
      if (r != 0) free(piece);
    }
  }
  free(local);
  return MPI_SUCCESS;
}

int msc_scatter(msc_comm_t *ctx, const double *global_in, double *plane) {
  /* rank 0 carves and sends; mirrors msc_gather */
  long lo[MSC_MAX_DIMS], hi[MSC_MAX_DIMS];
  for (int d = 0; d < ctx->ndim; d++) {
    lo[d] = ctx->halo[d];
    hi[d] = ctx->halo[d] + (ctx->hi[d] - ctx->lo[d]);
  }
  long n = strip_count(ctx, lo, hi);
  double *local = (double *)malloc(sizeof(double) * n);
  if (ctx->rank == 0) {
    for (int r = ctx->size - 1; r >= 0; r--) {
      int coords[MSC_MAX_DIMS];
      MPI_Cart_coords(ctx->cart, r, ctx->ndim, coords);
      long rlo[MSC_MAX_DIMS], rhi[MSC_MAX_DIMS], rn = 1;
      for (int d = 0; d < ctx->ndim; d++) {
        long base_sz = ctx->global[d] / ctx->dims[d];
        long extra = ctx->global[d] % ctx->dims[d];
        long c = coords[d];
        rlo[d] = c * base_sz + (c < extra ? c : extra);
        rhi[d] = rlo[d] + base_sz + (c < extra ? 1 : 0);
        rn *= rhi[d] - rlo[d];
      }
      double *piece = (double *)malloc(sizeof(double) * rn);
      long pos = 0, idx[MSC_MAX_DIMS];
      for (long a = rlo[0]; a < rhi[0]; a++) {
        idx[0] = a;
        for (long b = (ctx->ndim > 1 ? rlo[1] : 0);
             b < (ctx->ndim > 1 ? rhi[1] : 1); b++) {
          if (ctx->ndim > 1) idx[1] = b;
          for (long g = (ctx->ndim > 2 ? rlo[2] : 0);
               g < (ctx->ndim > 2 ? rhi[2] : 1); g++) {
            if (ctx->ndim > 2) idx[2] = g;
            long flat = 0;
            for (int d = 0; d < ctx->ndim; d++)
              flat = flat * ctx->global[d] + idx[d];
            piece[pos++] = global_in[flat];
          }
        }
      }
      if (r != 0) MPI_Send(piece, rn, MPI_DOUBLE, r, 9001, ctx->cart);
      else memcpy(local, piece, sizeof(double) * rn);
      free(piece);
    }
  } else {
    MPI_Recv(local, n, MPI_DOUBLE, 0, 9001, ctx->cart,
             MPI_STATUS_IGNORE);
  }
  copy_strip(ctx, plane, lo, hi, local, 0);
  free(local);
  return MPI_SUCCESS;
}

void msc_comm_free(msc_comm_t *ctx) { MPI_Comm_free(&ctx->cart); }
"""


class MPICodeGenerator:
    """Emit the distributed stencil program + the comm library in C."""

    def __init__(self, stencil: Stencil, schedules: Mapping[str, Schedule],
                 mpi_grid, boundary: str = "zero"):
        validate_stencil(stencil)
        if boundary not in ("zero", "periodic"):
            raise ValueError(
                f"MPI codegen supports zero/periodic, got {boundary!r}"
            )
        out = stencil.output
        self.stencil = stencil
        self.boundary = boundary
        self.mpi_grid = tuple(int(g) for g in mpi_grid)
        if len(self.mpi_grid) != out.ndim:
            raise ValueError(
                f"MPI grid {self.mpi_grid} does not match a "
                f"{out.ndim}-D stencil"
            )
        self.real = out.dtype.c_name
        self.ndim = out.ndim
        self.dims = {1: ("i",), 2: ("j", "i"), 3: ("k", "j", "i")}[out.ndim]
        if out.dtype.c_name != "double":
            raise ValueError(
                "the generated comm library is double-precision; "
                "use f64 tensors for MPI code generation"
            )

    def program_source(self, name: str) -> str:
        st = self.stencil
        out = st.output
        hist = st.required_time_window - 1
        w = out.time_window
        halos = {out.name: out.halo}

        def plane_of(tname: str, time_offset: int) -> str:
            if time_offset == 0:
                return "PLANE(t_read)"
            return f"PLANE(t_read - {-time_offset})"

        dims = self.dims
        # local padded strides are runtime values (ctx.padded[]) so the
        # access macro is variable-stride
        idx = dims[0]
        for d in range(1, self.ndim):
            idx = f"({idx}) * ctx.padded[{d}] + ({dims[d]})"
        lines: List[str] = [
            f"/* generated by MSC: distributed {out.name} over "
            f"{'x'.join(map(str, self.mpi_grid))} ranks */",
            '#include "msc_comm.h"',
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "#include <math.h>",
            "typedef double real;",
            f"#define TWIN {w}",
            "static msc_comm_t ctx;",
            "static real *win;  /* TWIN local padded planes */",
            "static long plane_elems;",
            "#define PLANE(t) (win + (((t) % TWIN + TWIN) % TWIN) * "
            "plane_elems)",
            f"#define AT_{out.name}(p, {', '.join(dims)}) ((p)[{idx}])",
        ]
        # one sweep per kernel over the local sub-domain; the declared
        # halo equals the runtime ctx.halo, so the halo-folded subscripts
        # rendered by render_expr_c index the padded local planes
        seen = set()
        for _, app in st.combination_terms():
            kern = app.kernel
            if kern.name in seen:
                continue
            seen.add(kern.name)
            body = render_expr_c(kern.expr, plane_of, halos, dims)
            acc_idx = dims[0]
            for d in range(1, self.ndim):
                acc_idx = f"({acc_idx}) * nloc[{d}] + ({dims[d]})"
            loop_lines = []
            for d, v in enumerate(dims):
                loop_lines.append(
                    "  " * (d + 1)
                    + f"for (long {v} = 0; {v} < nloc[{d}]; {v}++) {{"
                )
            close = ["  " * (d + 1) + "}" for d in range(self.ndim)][::-1]
            lines += [
                f"static void sweep_{kern.name}(long t_read, real *acc, "
                "real scale) {",
                "  long nloc[MSC_MAX_DIMS];",
                "  for (int d = 0; d < ctx.ndim; d++) "
                "nloc[d] = ctx.hi[d] - ctx.lo[d];",
            ]
            lines += loop_lines
            lines.append(
                "  " * (self.ndim + 1)
                + f"acc[{acc_idx}] += scale * {body};"
            )
            lines += close
            lines.append("}")
        lines += [
            "",
            "int main(int argc, char **argv) {",
            "  MPI_Init(&argc, &argv);",
            f"  int dims[] = {{{', '.join(map(str, self.mpi_grid))}}};",
            "  int periods[] = {"
            + ", ".join(
                "1" if self.boundary == "periodic" else "0"
                for _ in range(self.ndim)
            )
            + "};",
            f"  long global[] = {{{', '.join(map(str, out.shape))}}};",
            f"  long halo[] = {{{', '.join(map(str, out.halo))}}};",
            f"  msc_comm_init(&ctx, MPI_COMM_WORLD, {self.ndim}, dims, "
            "periods, global, halo);",
            "  plane_elems = 1;",
            "  for (int d = 0; d < ctx.ndim; d++) "
            "plane_elems *= ctx.padded[d];",
            "  win = (real *)calloc((size_t)TWIN * plane_elems, "
            "sizeof(real));",
            "  long gelems = 1;",
            "  for (int d = 0; d < ctx.ndim; d++) gelems *= global[d];",
            "  real *gbuf = NULL;",
            "  if (ctx.rank == 0) gbuf = (real *)malloc(sizeof(real) * "
            "gelems);",
            '  FILE *fi = NULL;',
            '  if (ctx.rank == 0) fi = fopen(argv[1], "rb");',
            f"  for (long s = 0; s < {hist}; s++) {{",
            "    if (ctx.rank == 0 && fread(gbuf, sizeof(real), gelems, fi)"
            " != (size_t)gelems) MPI_Abort(MPI_COMM_WORLD, 1);",
            "    msc_scatter(&ctx, gbuf, PLANE(s));",
            "    msc_fill_boundary(&ctx, PLANE(s));",
            "    msc_exchange(&ctx, PLANE(s));",
            "  }",
            "  if (ctx.rank == 0) fclose(fi);",
            "  long steps = strtol(argv[2], NULL, 10);",
            "  long nloc_total = 1;",
            "  for (int d = 0; d < ctx.ndim; d++) "
            "nloc_total *= ctx.hi[d] - ctx.lo[d];",
            "  real *acc = (real *)malloc(sizeof(real) * nloc_total);",
            f"  for (long t = {hist}; t < {hist} + steps; t++) {{",
            "    memset(acc, 0, sizeof(real) * nloc_total);",
        ]
        for scale, app in st.combination_terms():
            lines.append(
                f"    sweep_{app.kernel.name}(t - {-app.time_offset}, "
                f"acc, (real){scale!r});"
            )
        copy_open = []
        for d, v in enumerate(dims):
            copy_open.append(
                "  " * (d + 2)
                + f"for (long {v} = 0; {v} < ctx.hi[{d}] - ctx.lo[{d}]; "
                f"{v}++) {{"
            )
        copy_close = ["  " * (d + 2) + "}"
                      for d in range(self.ndim)][::-1]
        acc_idx = dims[0]
        for d in range(1, self.ndim):
            acc_idx = f"({acc_idx}) * (ctx.hi[{d}] - ctx.lo[{d}]) " \
                      f"+ ({dims[d]})"
        shifted = ", ".join(
            f"{v} + ctx.halo[{d}]" for d, v in enumerate(dims)
        )
        lines += [
            "    real *p = PLANE(t);",
        ]
        lines += copy_open
        lines.append(
            "  " * (self.ndim + 2)
            + f"AT_{out.name}(p, {shifted}) = acc[{acc_idx}];"
        )
        lines += copy_close
        lines += [
            "    /* the library call the compiler inserted (Sec. 4.4) */",
            "    msc_fill_boundary(&ctx, p);",
            "    msc_exchange(&ctx, p);",
            "  }",
            f"  msc_gather(&ctx, PLANE({hist} + steps - 1), gbuf);",
            "  if (ctx.rank == 0) {",
            '    FILE *fo = fopen(argv[3], "wb");',
            "    fwrite(gbuf, sizeof(real), gelems, fo);",
            "    fclose(fo);",
            "  }",
            "  free(win); free(acc);",
            "  msc_comm_free(&ctx);",
            "  MPI_Finalize();",
            "  return 0;",
            "}",
        ]
        return "\n".join(lines) + "\n"

    def generate(self, name: str) -> GeneratedCode:
        from ..obs import span
        from .mpi_stub import MPI_STUB_HEADER

        code = GeneratedCode(name=name, target="mpi")
        code.files["msc_comm.h"] = COMM_HEADER
        code.files["msc_comm.c"] = COMM_SOURCE
        code.files["msc_mpi_stub.h"] = MPI_STUB_HEADER
        with span("codegen.mpi", bundle=name):
            code.files[f"{name}_mpi.c"] = self.program_source(name)
        code.files["Makefile"] = (
            "# generated by MSC (distributed build)\n"
            "CC = mpicc\n"
            "CFLAGS = -O3 -fopenmp\n"
            f"all: {name}\n"
            f"{name}: {name}_mpi.c msc_comm.c msc_comm.h\n"
            f"\t$(CC) $(CFLAGS) {name}_mpi.c msc_comm.c -o $@ -lm\n"
            "# single-rank build against the bundled MPI stub (testing)\n"
            f"single: {name}_mpi.c msc_comm.c msc_comm.h msc_mpi_stub.h\n"
            f"\tgcc -O2 -DMSC_MPI_STUB {name}_mpi.c msc_comm.c "
            f"-o {name} -lm\n"
            "clean:\n"
            f"\trm -f {name}\n"
            ".PHONY: all single clean\n"
        )
        return code


def generate_mpi(stencil: Stencil, schedules: Mapping[str, Schedule],
                 name: str, mpi_grid,
                 boundary: str = "zero") -> GeneratedCode:
    """Generate the distributed C bundle (program + comm library)."""
    return MPICodeGenerator(
        stencil, schedules, mpi_grid, boundary
    ).generate(name)
