"""Target dispatch: generate a complete code bundle for a named target.

``generate(stencil, schedules, name, target)`` is the single entry the
frontend's ``compile_to_source_code`` calls.  Targets:

- ``"cpu"``    — portable C + OpenMP (compilable here with gcc),
- ``"matrix"`` — same program shape, Matrix toolchain flags,
- ``"sunway"`` — athread master/slave bundle (structural validation
  only; sw5cc is not available off-platform).

Every bundle includes its Makefile.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ir.stencil import Stencil
from ..obs import span
from ..schedule.schedule import Schedule
from .c_codegen import CCodeGenerator, GeneratedCode
from .makefile import generate_makefile
from .sunway import SunwayCodeGenerator

__all__ = ["generate", "KNOWN_TARGETS"]

KNOWN_TARGETS = ("cpu", "matrix", "sunway", "mpi")


def generate(stencil: Stencil, schedules: Mapping[str, Schedule],
             name: str, target: str = "cpu", boundary: str = "zero",
             use_mpi: bool = False,
             nthreads: Optional[int] = None,
             mpi_grid=None, scalars=None) -> GeneratedCode:
    """Generate source + Makefile for ``target``."""
    if target not in KNOWN_TARGETS:
        raise ValueError(
            f"unknown target {target!r}; known: {KNOWN_TARGETS}"
        )
    with span("codegen.generate", target=target, bundle=name,
              stencil=stencil.output.name) as sp:
        if target == "mpi":
            from .mpi_codegen import generate_mpi

            if mpi_grid is None:
                raise ValueError(
                    "target 'mpi' needs an mpi_grid (set one on the "
                    "program or pass mpi_grid=...)"
                )
            code = generate_mpi(stencil, schedules, name, mpi_grid,
                                boundary)
        elif target == "sunway":
            gen = SunwayCodeGenerator(stencil, schedules, boundary)
            code = gen.generate(name)
        else:
            gen = CCodeGenerator(
                stencil, schedules, boundary, use_openmp=True,
                nthreads=nthreads, scalars=scalars,
            )
            code = gen.generate(name)
            code.target = target
        if "Makefile" not in code.files:
            code.files["Makefile"] = generate_makefile(
                name, target, use_mpi
            )
        sp.set(files=len(code.files),
               bytes=sum(len(v) for v in code.files.values()))
    return code
