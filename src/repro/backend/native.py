"""Native execution backend: compile the generated C, run it in-process.

The paper's headline claim is that *generated* code runs at native
speed; executing the lowered schedule tile-by-tile in numpy (the
:class:`~repro.backend.numpy_backend.ScheduledExecutor`) keeps every
transformation observable but leaves the raw-speed claim untested.
This module closes that gap the way Devito does (Luporini et al.): the
:class:`~repro.backend.c_codegen.CCodeGenerator` bundle is compiled
into a shared library and driven through ``ctypes`` on the same padded
numpy planes, so results are bit-comparable with the numpy backend.

Two pieces are reusable beyond the executor:

- :func:`build_artifact` / :class:`ArtifactCache` — a content-addressed
  on-disk binary cache keyed by (sources, resolved flags, compiler
  fingerprint, program fingerprints).  ``repro verify`` builds its
  check binaries through the same helper, so one codegen change cannot
  drift between the run and verify paths.
- :func:`run_binary` — timeout-guarded execution of a generated
  program (a wedged compile or runaway binary must never hang the
  pipeline; see the ``REPRO_COMPILE_TIMEOUT`` / ``REPRO_RUN_TIMEOUT``
  knobs).

Cache layout (``REPRO_CACHE_DIR``, default ``~/.cache/repro/artifacts``)::

    <root>/<key[:2]>/<key>/meta.json   # fingerprints, flags, size
    <root>/<key[:2]>/<key>/<binary>    # the .so or executable
    <root>/<key[:2]>/<key>/<sources>   # what was compiled

``-march=native`` is resolved to the concrete architecture name before
keying, so a cache directory copied between hosts misses (and
recompiles) instead of silently running foreign code.

Observability: ``native.compile`` / ``native.run`` / ``native.exec``
spans, ``native.cache.hit`` / ``native.cache.miss`` counters.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.stencil import Stencil
from ..schedule.schedule import Schedule
from .c_codegen import CCodeGenerator, GeneratedCode
from .makefile import toolchain_cflags

__all__ = [
    "NativeUnavailable",
    "NativeBuildError",
    "NativeRunError",
    "ArtifactCache",
    "BuiltArtifact",
    "build_artifact",
    "run_binary",
    "which_cc",
    "native_available",
    "compiler_fingerprint",
    "compile_timeout",
    "run_timeout",
    "cache_dir",
    "artifact_key",
    "ir_fingerprint",
    "schedule_fingerprint",
    "SharedLibGenerator",
    "NativeExecutor",
    "select_backend",
]

#: default ceilings; override with REPRO_COMPILE_TIMEOUT / REPRO_RUN_TIMEOUT
DEFAULT_COMPILE_TIMEOUT_S = 120.0
DEFAULT_RUN_TIMEOUT_S = 300.0


class NativeUnavailable(RuntimeError):
    """No usable C compiler on this host (native backend cannot run)."""


class NativeBuildError(RuntimeError):
    """Compilation failed (or timed out: see ``timed_out``)."""

    def __init__(self, message: str, stderr: str = "",
                 timed_out: bool = False):
        super().__init__(message)
        self.stderr = stderr
        self.timed_out = timed_out


class NativeRunError(RuntimeError):
    """A generated binary failed or exceeded its run timeout."""

    def __init__(self, message: str, timed_out: bool = False):
        super().__init__(message)
        self.timed_out = timed_out


def compile_timeout() -> float:
    """Seconds a single compiler invocation may take."""
    return float(
        os.environ.get("REPRO_COMPILE_TIMEOUT", DEFAULT_COMPILE_TIMEOUT_S)
    )


def run_timeout() -> float:
    """Seconds a generated binary may run."""
    return float(os.environ.get("REPRO_RUN_TIMEOUT", DEFAULT_RUN_TIMEOUT_S))


def cache_dir() -> str:
    """Artifact-cache root (``REPRO_CACHE_DIR`` wins; read per call)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "artifacts"
    )


def which_cc(cc: Optional[str] = None) -> Optional[str]:
    """Resolve the C compiler path, or None when absent.

    Order: explicit ``cc`` argument, ``REPRO_CC``, the cpu-toolchain
    default (gcc).
    """
    from .makefile import TOOLCHAINS

    cand = cc or os.environ.get("REPRO_CC") or TOOLCHAINS["cpu"]["cc"]
    return shutil.which(cand)


def native_available(cc: Optional[str] = None) -> bool:
    """True when a C compiler is on PATH."""
    return which_cc(cc) is not None


@lru_cache(maxsize=8)
def compiler_fingerprint(cc_path: str) -> Tuple[Tuple[str, str], ...]:
    """Identity of the toolchain: version, target triple, resolved arch.

    Cached per compiler path, so the warm (cache-hit) path spawns no
    subprocesses at all.  Returned as a sorted tuple of pairs so it is
    hashable; use ``dict(...)`` for metadata.
    """
    def q(args: List[str]) -> str:
        try:
            proc = subprocess.run(
                [cc_path] + args, capture_output=True, text=True,
                timeout=compile_timeout(),
            )
        except (OSError, subprocess.TimeoutExpired):
            return ""
        return proc.stdout.strip() if proc.returncode == 0 else ""

    version = q(["-dumpfullversion"]) or q(["-dumpversion"])
    machine = q(["-dumpmachine"])
    # resolve what -march=native means *here*: a cache directory shared
    # or copied across hosts must miss, not run foreign code
    march = ""
    try:
        help_out = subprocess.run(
            [cc_path, "-march=native", "-Q", "--help=target"],
            capture_output=True, text=True, timeout=compile_timeout(),
            stdin=subprocess.DEVNULL,
        )
    except (OSError, subprocess.TimeoutExpired):
        help_out = None
    if help_out is not None and help_out.returncode == 0:
        for line in help_out.stdout.splitlines():
            parts = line.split()
            if len(parts) >= 2 and parts[0] == "-march=":
                march = parts[1]
                break
    return tuple(sorted({
        "cc": os.path.basename(cc_path),
        "version": version,
        "machine": machine,
        "march": march,
    }.items()))


def resolve_flags(flags: Sequence[str], fingerprint: Mapping[str, str]
                  ) -> List[str]:
    """Flags with host-dependent values made explicit for keying."""
    resolved = []
    for f in flags:
        if f == "-march=native" and fingerprint.get("march"):
            resolved.append(f"-march={fingerprint['march']}")
        else:
            resolved.append(f)
    return resolved


def artifact_key(sources: Mapping[str, str], flags: Sequence[str],
                 fingerprint: Mapping[str, str], kind: str,
                 extra: Optional[Mapping[str, Any]] = None) -> str:
    """Content address for one build: sha256 over everything that can
    change the binary."""
    payload = {
        "sources": {
            name: hashlib.sha256(text.encode()).hexdigest()
            for name, text in sorted(sources.items())
        },
        "flags": resolve_flags(flags, fingerprint),
        "compiler": dict(fingerprint),
        "kind": kind,
        "extra": dict(extra or {}),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class BuiltArtifact:
    """One resolved binary: where it is and how it was keyed."""

    path: str
    key: str
    cached: bool
    meta: Dict[str, Any]


class ArtifactCache:
    """Content-addressed binary store under :func:`cache_dir`.

    Corrupt entries (unreadable ``meta.json``, size mismatch against
    the recorded binary size) are purged at lookup and reported as a
    miss — never surfaced as an error.
    """

    def __init__(self, root: Optional[str] = None):
        self._root = root

    @property
    def root(self) -> str:
        return self._root or cache_dir()

    def _entry(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def lookup(self, key: str, binary_name: str
               ) -> Optional[Tuple[str, Dict[str, Any]]]:
        entry = self._entry(key)
        meta_path = os.path.join(entry, "meta.json")
        bin_path = os.path.join(entry, binary_name)
        if not (os.path.isfile(meta_path) and os.path.isfile(bin_path)):
            return None
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
            if int(meta["size"]) != os.path.getsize(bin_path):
                raise ValueError("binary size mismatch")
        except (ValueError, KeyError, OSError, json.JSONDecodeError):
            self.invalidate(key)
            return None
        return bin_path, meta

    def store(self, key: str, binary_path: str,
              sources: Mapping[str, str],
              meta: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
        entry = self._entry(key)
        tmp = entry + ".tmp"
        shutil.rmtree(tmp, ignore_errors=True)
        os.makedirs(tmp, exist_ok=True)
        binary_name = os.path.basename(binary_path)
        shutil.copy2(binary_path, os.path.join(tmp, binary_name))
        for name, text in sources.items():
            with open(os.path.join(tmp, name), "w") as fh:
                fh.write(text)
        meta = dict(meta)
        meta["size"] = os.path.getsize(binary_path)
        meta["key"] = key
        with open(os.path.join(tmp, "meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True, default=str)
        shutil.rmtree(entry, ignore_errors=True)
        os.replace(tmp, entry)
        return os.path.join(entry, binary_name), meta

    def invalidate(self, key: str) -> None:
        shutil.rmtree(self._entry(key), ignore_errors=True)


def build_artifact(sources: Mapping[str, str], binary_name: str,
                   kind: str = "exe",
                   cc: Optional[str] = None,
                   flags: Optional[Sequence[str]] = None,
                   compile_files: Optional[Sequence[str]] = None,
                   libs: Sequence[str] = ("-lm",),
                   cache: Optional[ArtifactCache] = None,
                   key_extra: Optional[Mapping[str, Any]] = None,
                   timeout: Optional[float] = None) -> BuiltArtifact:
    """Compile ``sources`` into ``binary_name``, through the cache.

    ``kind`` is ``"exe"`` or ``"shared"`` (adds ``-shared -fPIC``);
    ``compile_files`` selects which sources are passed to the compiler
    (default: every ``.c``); headers just need to be in ``sources``.
    A hit spawns no compiler subprocess and bumps ``native.cache.hit``.
    """
    from ..obs import counter, span
    from ..obs.events import emit

    cc_path = which_cc(cc)
    if cc_path is None:
        raise NativeUnavailable(
            "no C compiler found (install gcc or set REPRO_CC)"
        )
    fp = dict(compiler_fingerprint(cc_path))
    if flags is None:
        flags = toolchain_cflags("cpu") + ["-ffp-contract=off"]
    flags = list(flags)
    if kind == "shared":
        for extra in ("-shared", "-fPIC"):
            if extra not in flags:
                flags.append(extra)
    elif kind != "exe":
        raise ValueError(f"unknown artifact kind {kind!r}")
    key = artifact_key(sources, flags, fp, kind, key_extra)
    cache = cache or ArtifactCache()
    hit = cache.lookup(key, binary_name)
    if hit is not None:
        counter("native.cache.hit", kind=kind)
        emit("native.cache.hit", kind=kind, key=key[:12])
        return BuiltArtifact(path=hit[0], key=key, cached=True,
                             meta=hit[1])
    counter("native.cache.miss", kind=kind)
    emit("native.cache.miss", level="warn", kind=kind, key=key[:12])
    cfiles = list(compile_files) if compile_files is not None else sorted(
        name for name in sources if name.endswith(".c")
    )
    with span("native.compile", kind=kind, key=key[:12]):
        tmpdir = tempfile.mkdtemp(prefix="repro-native-")
        try:
            for name, text in sources.items():
                with open(os.path.join(tmpdir, name), "w") as fh:
                    fh.write(text)
            cmd = ([cc_path] + flags + ["-I."] + cfiles
                   + ["-o", binary_name] + list(libs))
            try:
                proc = subprocess.run(
                    cmd, cwd=tmpdir, capture_output=True, text=True,
                    timeout=timeout or compile_timeout(),
                )
            except subprocess.TimeoutExpired as exc:
                raise NativeBuildError(
                    f"compile timed out after {exc.timeout:.0f}s",
                    timed_out=True,
                ) from exc
            if proc.returncode != 0:
                raise NativeBuildError(
                    f"{os.path.basename(cc_path)} failed "
                    f"(rc={proc.returncode})",
                    stderr=proc.stderr,
                )
            meta = {
                "kind": kind,
                "compiler": fp,
                "flags": resolve_flags(flags, fp),
                "binary": binary_name,
                "sources": sorted(sources),
                "extra": dict(key_extra or {}),
            }
            path, meta = cache.store(
                key, os.path.join(tmpdir, binary_name), sources, meta
            )
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
    return BuiltArtifact(path=path, key=key, cached=False, meta=meta)


def run_binary(path: str, args: Sequence[str],
               cwd: Optional[str] = None,
               timeout: Optional[float] = None
               ) -> "subprocess.CompletedProcess[str]":
    """Run a generated binary with the run-timeout guard.

    Raises :class:`NativeRunError` on timeout; nonzero exit status is
    the caller's to interpret (the CompletedProcess is returned).
    """
    from ..obs import span

    with span("native.run", binary=os.path.basename(path)):
        try:
            return subprocess.run(
                [path] + list(args), cwd=cwd, capture_output=True,
                text=True, timeout=timeout or run_timeout(),
            )
        except subprocess.TimeoutExpired as exc:
            raise NativeRunError(
                f"run timed out after {exc.timeout:.0f}s",
                timed_out=True,
            ) from exc


# -- program fingerprints --------------------------------------------------


def ir_fingerprint(stencil: Stencil) -> str:
    """Stable hash of the stencil IR (via the MSC pretty-printer)."""
    from ..frontend.printer import render_program

    return hashlib.sha256(render_program(stencil).encode()).hexdigest()


def schedule_fingerprint(schedules: Mapping[str, Schedule]) -> str:
    """Stable hash of every kernel's schedule primitives."""
    from ..frontend.printer import _render_schedule

    lines: List[str] = []
    for name in sorted(schedules):
        lines.extend(_render_schedule(name, schedules[name]))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# -- shared-library flavour of the C generator -----------------------------


class SharedLibGenerator(CCodeGenerator):
    """C generator variant exporting an in-process entry point.

    Instead of the file-I/O ``main``, the bundle exports::

        long msc_plane_elems(void);   /* padded elems per plane   */
        long msc_time_window(void);   /* TWIN                     */
        long msc_history(void);       /* initial planes expected  */
        int  msc_run(real *win, real **aux, long t0, long steps);

    ``win`` is the caller-owned TWIN-plane window (contiguous,
    ``TWIN * PLANE_ELEMS`` reals, plane ``t`` at slot ``t % TWIN``)
    with the initial halos already filled; ``aux`` the padded static
    input planes in :meth:`_aux_tensors` order.
    """

    def shared_entry(self) -> str:
        out = self.stencil.output
        hist = self.stencil.required_time_window - 1
        lines = [
            "long msc_plane_elems(void) { return PLANE_ELEMS; }",
            "long msc_time_window(void) { return TWIN; }",
            f"long msc_history(void) {{ return {hist}; }}",
            "int msc_run(real *win, real **aux, long t0, long steps) {",
            f"  {out.name}_win = win;",
            "  (void)aux;",
        ]
        for i, aux in enumerate(self.aux_tensors):
            lines.append(f"  {aux.name}_buf = aux[{i}];")
        lines += [
            "  real *acc = (real *)malloc(sizeof(real) * VALID_ELEMS);",
            "  if (!acc) return 1;",
            "  for (long t = t0; t < t0 + steps; t++) {",
        ]
        lines += self._timestep_body()
        lines += [
            "  }",
            "  free(acc);",
            "  return 0;",
            "}",
        ]
        return "\n".join(lines)

    def generate(self, name: str) -> GeneratedCode:
        from ..obs import span

        with span("codegen.c", bundle=name, flavor="shared"):
            parts = [self.header(), self.halo_fill()]
            seen = set()
            for _, app in self.stencil.combination_terms():
                if app.kernel.name not in seen:
                    seen.add(app.kernel.name)
                    with span("codegen.c.sweep", kernel=app.kernel.name):
                        parts.append(self.sweep_function(app))
            parts.append(self.shared_entry())
            code = GeneratedCode(name=name, target="c-shared")
            code.files[f"{name}.c"] = "\n\n".join(parts) + "\n"
        return code


# -- the executor ----------------------------------------------------------


class NativeExecutor:
    """Runs the compiled shared library on numpy-owned planes.

    API mirrors :class:`~repro.backend.numpy_backend.ScheduledExecutor`
    (``initialize`` / ``step`` / ``run`` / ``result``) so callers can
    swap backends; results are bit-comparable because the generated C
    is built with ``-ffp-contract=off`` and evaluates in the working
    precision.
    """

    def __init__(self, stencil: Stencil,
                 schedules: Mapping[str, Schedule],
                 boundary: str = "zero",
                 inputs: Optional[Mapping[str, np.ndarray]] = None,
                 scalars: Optional[Mapping[str, float]] = None,
                 cache: Optional[ArtifactCache] = None,
                 cc: Optional[str] = None):
        from .numpy_backend import _static_planes

        gen = SharedLibGenerator(
            stencil, schedules, boundary=boundary, scalars=scalars
        )
        self.stencil = stencil
        self.boundary = boundary
        self._gen = gen
        out = stencil.output
        self._halo = out.halo
        self._padded = tuple(
            s + 2 * h for s, h in zip(out.shape, out.halo)
        )
        self._interior = tuple(
            slice(h, h + s) for h, s in zip(out.halo, out.shape)
        )
        self._twin = out.time_window
        self._hist = stencil.required_time_window - 1
        self._np_dtype = out.dtype.np_dtype
        self._c_real = (
            ctypes.c_float if np.dtype(self._np_dtype).itemsize == 4
            else ctypes.c_double
        )
        planes, _halos = _static_planes(stencil, inputs, boundary)
        self._aux_arrays = [
            np.ascontiguousarray(planes[(aux.name, 0)])
            for aux in gen.aux_tensors
        ]
        self._cache = cache or ArtifactCache()
        self._cc = cc
        self._sources = gen.generate("msc_native").files
        self._key_extra = {
            "ir": ir_fingerprint(stencil),
            "schedule": schedule_fingerprint(gen.schedules),
            "boundary": boundary,
            "machine": self._machine_name(),
            "scalars": sorted((gen.scalars or {}).items()),
        }
        self.artifact = self._build()
        self._lib = self._load()
        self._win: Optional[np.ndarray] = None
        self._t: Optional[int] = None

    @staticmethod
    def _machine_name() -> str:
        from ..machine.spec import machine_by_name

        return machine_by_name("cpu").name

    def _build(self) -> BuiltArtifact:
        return build_artifact(
            self._sources, "msc_native.so", kind="shared", cc=self._cc,
            cache=self._cache, key_extra=self._key_extra,
        )

    def _load(self) -> ctypes.CDLL:
        try:
            return self._bind(ctypes.CDLL(self.artifact.path))
        except (OSError, AttributeError):
            # a same-size-corrupt cached .so (dlopen fails), or one
            # that loads but lacks our symbols: purge, rebuild once
            self._cache.invalidate(self.artifact.key)
            self.artifact = self._build()
            return self._bind(ctypes.CDLL(self.artifact.path))

    def _bind(self, lib: ctypes.CDLL) -> ctypes.CDLL:
        realp = ctypes.POINTER(self._c_real)
        lib.msc_run.restype = ctypes.c_int
        lib.msc_run.argtypes = [
            realp, ctypes.POINTER(realp), ctypes.c_long, ctypes.c_long
        ]
        lib.msc_plane_elems.restype = ctypes.c_long
        lib.msc_time_window.restype = ctypes.c_long
        lib.msc_history.restype = ctypes.c_long
        expect = int(np.prod(self._padded))
        got = int(lib.msc_plane_elems())
        if got != expect or int(lib.msc_time_window()) != self._twin:
            raise NativeBuildError(
                f"shared library layout mismatch: plane_elems={got} "
                f"(want {expect})"
            )
        return lib

    def initialize(self, init: Sequence[np.ndarray]) -> None:
        from .numpy_backend import fill_halo

        if len(init) != self._hist:
            raise ValueError(
                f"stencil needs {self._hist} initial plane(s) "
                f"(for t=0..{self._hist - 1}), got {len(init)}"
            )
        self._win = np.zeros(
            (self._twin,) + self._padded, dtype=self._np_dtype
        )
        for t, data in enumerate(init):
            plane = self._win[t % self._twin]
            plane[self._interior] = np.asarray(
                data, dtype=self._np_dtype
            )
            fill_halo(plane, self._halo, self.boundary)
        self._t = self._hist

    def advance(self, steps: int) -> None:
        """Run ``steps`` sweeps inside the shared library."""
        from ..obs import span

        if self._win is None or self._t is None:
            raise RuntimeError("call initialize() before advance()")
        if steps <= 0:
            return
        realp = ctypes.POINTER(self._c_real)
        win_ptr = self._win.ctypes.data_as(realp)
        n_aux = len(self._aux_arrays)
        aux_arr = (realp * max(n_aux, 1))(
            *[a.ctypes.data_as(realp) for a in self._aux_arrays]
        )
        with span("native.exec", steps=steps,
                  key=self.artifact.key[:12]):
            rc = int(self._lib.msc_run(win_ptr, aux_arr,
                                       self._t, steps))
        if rc != 0:
            raise NativeRunError(f"msc_run returned {rc}")
        self._t += steps

    def step(self) -> None:
        self.advance(1)

    def run(self, init: Sequence[np.ndarray],
            timesteps: int) -> np.ndarray:
        if timesteps < 0:
            raise ValueError("timesteps must be >= 0")
        self.initialize(init)
        self.advance(timesteps)
        return self.result()

    def result(self) -> np.ndarray:
        if self._win is None or self._t is None:
            raise RuntimeError("executor has not run yet")
        newest = self._win[(self._t - 1) % self._twin]
        return newest[self._interior].copy()


def select_backend(requested: str = "auto",
                   cc: Optional[str] = None) -> Tuple[str, str]:
    """Resolve an execution-backend request to ``(choice, reason)``.

    ``auto`` picks native when a C compiler is available and numpy
    otherwise; ``native`` raises :class:`NativeUnavailable` when it
    cannot be honoured.
    """
    if requested == "numpy":
        return "numpy", "requested"
    if requested == "native":
        path = which_cc(cc)
        if path is None:
            raise NativeUnavailable(
                "native backend requested but no C compiler found "
                "(install gcc or set REPRO_CC)"
            )
        return "native", f"requested ({path})"
    if requested == "auto":
        path = which_cc(cc)
        if path is not None:
            return "native", f"auto: {path} available"
        return "numpy", "auto: no C compiler found"
    raise ValueError(
        f"unknown backend {requested!r}; choose auto/native/numpy"
    )
