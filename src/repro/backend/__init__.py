"""Code generation backends (Sec. 3: the MSC backend).

AOT generation of standard C plus Makefiles for the ``cpu``, ``matrix``
(OpenMP) and ``sunway`` (athread master/slave) targets, and the
executable numpy backend used to run and verify schedules in-process.
"""

from .c_codegen import CCodeGenerator, GeneratedCode, render_expr_c
from .sunway import SunwayCodeGenerator, generate_sunway
from .makefile import generate_makefile, toolchain_cflags, TOOLCHAINS
from .native import (
    ArtifactCache,
    NativeBuildError,
    NativeExecutor,
    NativeRunError,
    NativeUnavailable,
    SharedLibGenerator,
    build_artifact,
    native_available,
    run_binary,
    select_backend,
)
from .targets import generate, KNOWN_TARGETS
from .temporal_exec import TemporalTilingExecutor
from .pipeline_exec import PipelineExecutor, distributed_pipeline_run
from .pipeline_codegen import PipelineCodeGenerator, generate_pipeline
from .mpi_codegen import MPICodeGenerator, generate_mpi, COMM_HEADER, COMM_SOURCE
from .numpy_backend import (
    BOUNDARY_CONDITIONS,
    ScheduledExecutor,
    evaluate_kernel,
    fill_halo,
    reference_run,
)

__all__ = [
    "CCodeGenerator", "GeneratedCode", "render_expr_c",
    "SunwayCodeGenerator", "generate_sunway",
    "generate_makefile", "toolchain_cflags", "TOOLCHAINS",
    "ArtifactCache", "NativeBuildError", "NativeExecutor",
    "NativeRunError", "NativeUnavailable", "SharedLibGenerator",
    "build_artifact", "native_available", "run_binary",
    "select_backend",
    "generate", "KNOWN_TARGETS",
    "BOUNDARY_CONDITIONS", "ScheduledExecutor", "evaluate_kernel",
    "fill_halo", "reference_run",
    "TemporalTilingExecutor",
    "PipelineExecutor", "distributed_pipeline_run",
    "PipelineCodeGenerator", "generate_pipeline",
    "MPICodeGenerator", "generate_mpi", "COMM_HEADER", "COMM_SOURCE",
]
