"""The executor phase: run the inspector's plan.

Functionally executes the stencil over the balanced decomposition on
the simulated MPI runtime (results must equal the uniform run and the
serial reference), and evaluates the plan's performance under a
work-proportional cost model (step time = most-loaded rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..ir.stencil import Stencil
from ..runtime.executor import distributed_run
from .inspector import InspectionPlan
from .workload import WorkloadMap

__all__ = ["ExecutionOutcome", "execute_plan", "step_time_model"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result + cost accounting of one executor-phase run."""

    result: np.ndarray
    imbalance_before: float
    imbalance_after: float
    step_cost_uniform: float
    step_cost_balanced: float

    @property
    def speedup(self) -> float:
        return self.step_cost_uniform / self.step_cost_balanced


def step_time_model(workload: WorkloadMap,
                    subdomains: Sequence) -> float:
    """Per-step cost: the most-loaded rank's total cell weight."""
    return max(workload.subdomain_cost(sd) for sd in subdomains)


def execute_plan(stencil: Stencil, plan: InspectionPlan,
                 workload: WorkloadMap,
                 init: Sequence[np.ndarray], timesteps: int,
                 boundary: str = "zero",
                 inputs: Optional[Mapping[str, np.ndarray]] = None
                 ) -> ExecutionOutcome:
    """Run the balanced decomposition and report the balancing payoff."""
    result = distributed_run(
        stencil, init, timesteps, plan.grid, boundary=boundary,
        inputs=inputs, subdomains=plan.balanced,
    )
    return ExecutionOutcome(
        result=result,
        imbalance_before=plan.imbalance_before,
        imbalance_after=plan.imbalance_after,
        step_cost_uniform=step_time_model(workload, plan.uniform),
        step_cost_balanced=step_time_model(workload, plan.balanced),
    )
