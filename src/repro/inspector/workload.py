"""Workload maps: per-cell cost weights for load-imbalanced stencils.

The paper's discussion (Sec. 5.6) motivates an inspector-executor
extension with WRF and POP2, which "suffer from serious load imbalance
in large-scale execution": not every grid cell costs the same (ocean
models skip land cells; adaptive physics does more work in active
regions).  A :class:`WorkloadMap` captures that cost field and provides
the aggregation the inspector needs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..comm.decomposition import SubDomain

__all__ = ["WorkloadMap", "ocean_land_mask", "hotspot_weights"]


class WorkloadMap:
    """A non-negative per-cell cost field over the global domain."""

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=float)
        if (weights < 0).any():
            raise ValueError("workload weights must be non-negative")
        if weights.sum() <= 0:
            raise ValueError("workload map is identically zero")
        self.weights = weights

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.weights.shape

    @property
    def total(self) -> float:
        return float(self.weights.sum())

    def subdomain_cost(self, sub: SubDomain) -> float:
        """Total cost of one sub-domain."""
        return float(self.weights[sub.slices()].sum())

    def imbalance(self, subdomains: Sequence[SubDomain]) -> float:
        """max/mean cost ratio over a decomposition (1.0 = perfect)."""
        costs = [self.subdomain_cost(sd) for sd in subdomains]
        mean = sum(costs) / len(costs)
        if mean == 0:
            raise ValueError("decomposition has zero mean cost")
        return max(costs) / mean

    def marginal(self, dim: int) -> np.ndarray:
        """Cost summed over all dimensions except ``dim``."""
        axes = tuple(d for d in range(self.weights.ndim) if d != dim)
        return self.weights.sum(axis=axes)


def ocean_land_mask(shape: Sequence[int], land_fraction: float = 0.35,
                    seed: int = 0) -> np.ndarray:
    """A POP2-style cost field: land cells (no work) in blobs.

    Generates smooth random blobs and thresholds them so roughly
    ``land_fraction`` of the domain costs (near) zero.
    """
    if not 0 <= land_fraction < 1:
        raise ValueError("land_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    field = rng.random(shape)
    # smooth with a separable box filter to get blobs
    for d in range(len(shape)):
        width = max(3, shape[d] // 8)
        kernel = np.ones(width) / width
        field = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), d, field
        )
    threshold = np.quantile(field, land_fraction)
    return np.where(field >= threshold, 1.0, 0.05)


def hotspot_weights(shape: Sequence[int], factor: float = 8.0) -> np.ndarray:
    """A WRF-style cost field: a hot region costing ``factor``× more."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    weights = np.ones(shape)
    sl = tuple(slice(0, max(1, s // 3)) for s in shape)
    weights[sl] = factor
    return weights
