"""The inspector phase (Sec. 5.6): analyse sub-grids, plan schedules.

"We plan to adopt the inspector-executor method in MSC, which analyzes
the subgrids and generates the corresponding optimization schedules in
the inspector phase, and performs compilation and code generation in
the executor phase."

The inspector takes a stencil, a workload map and a process grid and
produces an :class:`InspectionPlan`:

- a *weighted* tensor-product decomposition whose per-dimension cut
  points equalise the marginal workload (keeping the Cartesian
  neighbour structure the communication library relies on),
- per-rank tile sizes adapted to each sub-domain (the "diverging
  compilation optimizations" of the discussion),
- before/after imbalance statistics and the projected speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..comm.decomposition import SubDomain, decompose
from ..ir.stencil import Stencil
from ..machine.spec import MachineSpec, SUNWAY_CG
from .workload import WorkloadMap

__all__ = ["InspectionPlan", "Inspector", "weighted_cuts",
           "decompose_weighted"]


def weighted_cuts(marginal: np.ndarray, parts: int) -> List[Tuple[int, int]]:
    """Cut one dimension into ``parts`` intervals of near-equal weight.

    Returns half-open intervals covering [0, len(marginal)).  Every
    interval is non-empty even when the weight is concentrated.
    """
    n = len(marginal)
    if parts > n:
        raise ValueError(f"cannot cut extent {n} into {parts} parts")
    cum = np.concatenate([[0.0], np.cumsum(marginal)])
    total = cum[-1]
    bounds = [0]
    for p in range(1, parts):
        target = total * p / parts
        idx = int(np.searchsorted(cum, target))
        # keep at least one cell per part and monotone bounds
        idx = max(idx, bounds[-1] + 1)
        idx = min(idx, n - (parts - p))
        bounds.append(idx)
    bounds.append(n)
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


def decompose_weighted(global_shape: Sequence[int], grid: Sequence[int],
                       workload: WorkloadMap) -> List[SubDomain]:
    """Tensor-product decomposition with weighted per-dimension cuts.

    The cuts equalise each dimension's *marginal* workload — the
    strongest balancing achievable while keeping sub-domains rectilinear
    (so the halo-exchange faces still pair up exactly).
    """
    if workload.shape != tuple(global_shape):
        raise ValueError(
            f"workload shape {workload.shape} != domain {global_shape}"
        )
    per_dim = [
        weighted_cuts(workload.marginal(d), g)
        for d, g in enumerate(grid)
    ]
    subdomains: List[SubDomain] = []
    ndim = len(grid)

    def rec(dim: int, coords: List[int]) -> None:
        if dim == ndim:
            rank = 0
            for c, g in zip(coords, grid):
                rank = rank * g + c
            lo = tuple(per_dim[d][coords[d]][0] for d in range(ndim))
            hi = tuple(per_dim[d][coords[d]][1] for d in range(ndim))
            subdomains.append(SubDomain(rank, tuple(coords), lo, hi))
            return
        for c in range(grid[dim]):
            rec(dim + 1, coords + [c])

    rec(0, [])
    subdomains.sort(key=lambda s: s.rank)
    return subdomains


@dataclass
class InspectionPlan:
    """Everything the executor phase needs."""

    grid: Tuple[int, ...]
    uniform: List[SubDomain]
    balanced: List[SubDomain]
    imbalance_before: float
    imbalance_after: float
    tile_per_rank: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def projected_speedup(self) -> float:
        """Step-time ratio under a work-proportional cost model.

        The step time is set by the most-loaded rank, so balancing
        improves it by (max cost before) / (max cost after).
        """
        return self.imbalance_before / self.imbalance_after


class Inspector:
    """Analyse a stencil + workload and emit an :class:`InspectionPlan`."""

    def __init__(self, stencil: Stencil, workload: WorkloadMap,
                 machine: MachineSpec = SUNWAY_CG):
        if workload.shape != stencil.output.shape:
            raise ValueError(
                "workload map does not match the stencil domain"
            )
        self.stencil = stencil
        self.workload = workload
        self.machine = machine

    def _suggest_tile(self, sub_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-rank tile sizes: the largest SPM-feasible tile.

        Keeps the unit-stride dimension long (DMA efficiency) and
        halves outer dimensions first until the staging buffers fit,
        mirroring the Table-5 pattern.
        """
        rad = self.stencil.radius
        elem = self.stencil.output.dtype.nbytes
        ndim = len(sub_shape)
        tile = [min(s, 64 if d == ndim - 1 else 8)
                for d, s in enumerate(sub_shape)]

        def spm_need(t):
            padded = 1
            interior = 1
            for x, r in zip(t, rad):
                padded *= x + 2 * r
                interior *= x
            return (padded + interior) * elem

        budget = self.machine.spm_bytes or (1 << 30)
        d = 0
        while spm_need(tile) > budget:
            if tile[d % ndim] > 1:
                tile[d % ndim] = max(1, tile[d % ndim] // 2)
            d += 1
            if d > 64:
                break
        return tuple(tile)

    def inspect(self, grid: Sequence[int]) -> InspectionPlan:
        grid = tuple(int(g) for g in grid)
        uniform = decompose(self.stencil.output.shape, grid)
        balanced = decompose_weighted(
            self.stencil.output.shape, grid, self.workload
        )
        plan = InspectionPlan(
            grid=grid,
            uniform=uniform,
            balanced=balanced,
            imbalance_before=self.workload.imbalance(uniform),
            imbalance_after=self.workload.imbalance(balanced),
        )
        for sd in balanced:
            plan.tile_per_rank[sd.rank] = self._suggest_tile(sd.shape)
        return plan
