"""Inspector-executor extension (Sec. 5.6 future work).

Analyses per-cell workload (WRF/POP2-style load imbalance), plans a
weighted tensor-product decomposition with per-rank schedules, and
executes it over the simulated MPI runtime.
"""

from .workload import WorkloadMap, hotspot_weights, ocean_land_mask
from .inspector import (
    InspectionPlan,
    Inspector,
    decompose_weighted,
    weighted_cuts,
)
from .executor import ExecutionOutcome, execute_plan, step_time_model

__all__ = [
    "WorkloadMap", "hotspot_weights", "ocean_land_mask",
    "InspectionPlan", "Inspector", "decompose_weighted", "weighted_cuts",
    "ExecutionOutcome", "execute_plan", "step_time_model",
]
