"""Execution runtime: simulated MPI, fault injection, the network
timing model, and the distributed stencil executor."""

from .simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    CartComm,
    Communicator,
    RankCrashedError,
    Request,
    SimMPIError,
    SimMPITimeout,
    run_ranks,
)
from .faults import FaultInjector, FaultSpec, parse_fault_spec
from .network import NetworkModel, ScalePoint, scaling_run
from .topology import ExchangeLoad, Topology, fat_tree, route_exchange, torus
from .executor import DistributedStencil, distributed_run

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "CartComm", "Communicator", "Request",
    "RankCrashedError", "SimMPIError", "SimMPITimeout", "run_ranks",
    "FaultInjector", "FaultSpec", "parse_fault_spec",
    "NetworkModel", "ScalePoint", "scaling_run",
    "ExchangeLoad", "Topology", "fat_tree", "route_exchange", "torus",
    "DistributedStencil", "distributed_run",
]
