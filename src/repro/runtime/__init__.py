"""Execution runtime: simulated MPI, the network timing model, and the
distributed stencil executor."""

from .simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    CartComm,
    Communicator,
    Request,
    SimMPIError,
    run_ranks,
)
from .network import NetworkModel, ScalePoint, scaling_run
from .topology import ExchangeLoad, Topology, fat_tree, route_exchange, torus
from .executor import DistributedStencil, distributed_run

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "CartComm", "Communicator", "Request",
    "SimMPIError", "run_ranks",
    "NetworkModel", "ScalePoint", "scaling_run",
    "ExchangeLoad", "Topology", "fat_tree", "route_exchange", "torus",
    "DistributedStencil", "distributed_run",
]
