"""Distributed stencil execution over the simulated MPI runtime.

``distributed_run`` executes a stencil across an MPI process grid with
real data: every rank owns a sub-domain (Fig. 6a), keeps a local
sliding time window, exchanges halos through the communication library
after producing each plane, and rank 0 gathers the global result.  The
output must match the single-node serial reference exactly — that
equivalence is the core integration test of the communication library.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..backend.numpy_backend import evaluate_kernel
from ..comm.decomposition import SubDomain, decompose
from ..comm.halo import HaloSpec, core_owned_regions
from ..ir.stencil import Stencil
from ..ir.validate import validate_stencil
from ..obs import counter, span
from ..obs.events import emit
from .simmpi import CartComm, run_ranks

__all__ = ["distributed_run", "DistributedStencil"]


def _zero_unowned_edges(plane: np.ndarray, spec: HaloSpec,
                        comm: CartComm) -> None:
    """Zero the ghost strips on global (neighbour-less) boundaries.

    Window planes are recycled, so stale ghosts must be cleared wherever
    the exchange will not overwrite them.
    """
    ndim = len(spec.sub_shape)
    for d in range(ndim):
        h = spec.halo[d]
        if h == 0:
            continue
        src, dst = comm.Shift(d, 1)
        if src < 0:
            sl = [slice(None)] * ndim
            sl[d] = slice(0, h)
            plane[tuple(sl)] = 0
        if dst < 0:
            sl = [slice(None)] * ndim
            sl[d] = slice(spec.padded_shape[d] - h, spec.padded_shape[d])
            plane[tuple(sl)] = 0


class DistributedStencil:
    """Per-rank state and stepping logic for one distributed stencil."""

    def __init__(self, stencil: Stencil, comm: CartComm,
                 subdomains: Sequence[SubDomain],
                 boundary: str = "zero",
                 exchanger: str = "async",
                 scalars=None,
                 exchange_mode: Optional[str] = None):
        if boundary not in ("zero", "periodic"):
            raise ValueError(
                "distributed runs support zero/periodic boundaries, got "
                f"{boundary!r}"
            )
        validate_stencil(stencil)
        self.stencil = stencil
        self.comm = comm
        self.boundary = boundary
        self.sub = subdomains[comm.rank]
        out = stencil.output
        self.spec = HaloSpec(self.sub.shape, out.halo)
        from ..comm.library import create_exchanger  # breaks an import cycle

        options = {}
        if exchange_mode is not None:
            # only the async exchanger family understands modes; other
            # strategies reject the option in their constructor
            options["mode"] = exchange_mode
        self.exchanger = create_exchanger(
            exchanger, comm, self.spec, **options
        )
        #: overlap mode: the step loop computes the CORE block while
        #: the newest plane's exchange is still in flight
        self._overlap = (
            getattr(self.exchanger, "mode", "basic") == "overlap"
        )
        w = out.time_window
        self._planes = np.zeros(
            (w, *self.spec.padded_shape), dtype=out.dtype.np_dtype
        )
        self._held = [-(10 ** 9)] * w
        self.newest = -1
        self._static: Dict[Tuple[str, int], np.ndarray] = {}
        self._halos: Dict[str, Tuple[int, ...]] = {out.name: out.halo}
        self._scalars = dict(scalars) if scalars else {}

    # -- plane management -----------------------------------------------------
    def plane(self, t: int) -> np.ndarray:
        w = self.stencil.output.time_window
        slot = t % w
        if self._held[slot] != t:
            raise KeyError(f"timestep {t} not live in the window")
        return self._planes[slot]

    def _interior(self, padded: np.ndarray) -> np.ndarray:
        return padded[self.spec.interior()]

    def _refresh_ghosts(self, plane: np.ndarray) -> None:
        # an overlap-mode exchanger allows one in-flight exchange;
        # drain it before starting the next (no-op otherwise)
        self.exchanger.finish_exchange()
        _zero_unowned_edges(plane, self.spec, self.comm)
        self.exchanger.begin_exchange(plane)

    def seed(self, t: int, global_plane: np.ndarray) -> None:
        """Install one initial history plane from the global array."""
        w = self.stencil.output.time_window
        slot = t % w
        self._planes[slot].fill(0)
        self._interior(self._planes[slot])[...] = (
            global_plane[self.sub.slices()]
        )
        self._held[slot] = t
        self.newest = max(self.newest, t)
        self._refresh_ghosts(self._planes[slot])

    def set_static_input(self, name: str, tensor,
                         global_data: np.ndarray) -> None:
        """Scatter an auxiliary (time-invariant) tensor with its halo."""
        halo = getattr(tensor, "halo", (0,) * tensor.ndim)
        spec = HaloSpec(self.sub.shape, tuple(halo))
        padded = np.zeros(spec.padded_shape, dtype=tensor.dtype.np_dtype)
        padded[spec.interior()] = global_data[self.sub.slices()]
        if any(h > 0 for h in halo):
            from ..comm.library import create_exchanger

            ex = create_exchanger("async", self.comm, spec)
            _zero_unowned_edges(padded, spec, self.comm)
            ex.exchange(padded)
        for off in (0, -1, -2, -3, -4):
            self._static[(name, off)] = padded
        self._halos[name] = tuple(halo)

    # -- stepping ---------------------------------------------------------------
    def _accumulate(self, acc: np.ndarray, t: int,
                    region: Sequence[Tuple[int, int]]) -> None:
        """Evaluate all combination terms over ``region`` into ``acc``."""
        out = self.stencil.output
        sl = tuple(slice(lo, hi) for lo, hi in region)
        for scale, app in self.stencil.combination_terms():
            planes = dict(self._static)
            planes[(out.name, 0)] = self.plane(t + app.time_offset)
            for extra in range(1, out.time_window):
                held = t + app.time_offset - extra
                if held >= 0:
                    try:
                        planes[(out.name, -extra)] = self.plane(held)
                    except KeyError:
                        pass
            with span("runtime.kernel_eval", kernel=app.kernel.name):
                val = evaluate_kernel(
                    app.kernel, planes, self._halos, list(region),
                    scalars=self._scalars,
                )
            acc[sl] += np.asarray(scale * val, dtype=out.dtype.np_dtype)

    def step(self) -> None:
        out = self.stencil.output
        t = self.newest + 1
        with span("runtime.step", rank=self.comm.rank, t=t):
            acc = np.zeros(self.sub.shape, dtype=out.dtype.np_dtype)
            if self._overlap and self.exchanger.pending:
                # compute/communication overlap: the CORE block only
                # reads interior cells of the history planes, so it is
                # computed while the newest plane's ghost blocks are
                # still in flight; the OWNED shell waits for them
                core, owned = core_owned_regions(
                    self.sub.shape, self.stencil.radius
                )
                if core is not None:
                    with span("runtime.core_compute",
                              rank=self.comm.rank, t=t):
                        self._accumulate(acc, t, core)
                self.exchanger.finish_exchange()
                with span("runtime.owned_compute", rank=self.comm.rank,
                          t=t, slabs=len(owned)):
                    for box in owned:
                        self._accumulate(acc, t, box)
            else:
                region = [(0, s) for s in self.sub.shape]
                self._accumulate(acc, t, region)
            w = out.time_window
            slot = t % w
            self._held[slot] = t
            self.newest = t
            self._interior(self._planes[slot])[...] = acc
            self._refresh_ghosts(self._planes[slot])
        counter("runtime.steps", rank=self.comm.rank)

    def finalize(self) -> None:
        """Drain any in-flight overlap exchange (end of the run)."""
        self.exchanger.finish_exchange()

    def local_result(self) -> np.ndarray:
        return self._interior(self.plane(self.newest)).copy()


def distributed_run(stencil: Stencil, init: Sequence[np.ndarray],
                    timesteps: int, grid: Sequence[int],
                    boundary: str = "zero",
                    inputs: Optional[Mapping[str, np.ndarray]] = None,
                    exchanger: str = "async",
                    subdomains: Optional[Sequence[SubDomain]] = None,
                    scalars=None, faults=None,
                    exchange_mode: Optional[str] = None) -> np.ndarray:
    """Run ``timesteps`` sweeps over an MPI grid; return the global result.

    ``init`` are the W-1 global initial planes.  Uses the named
    exchange strategy from the communication-library registry.  A
    custom rectilinear (tensor-product) ``subdomains`` list — e.g. the
    inspector's load-balanced decomposition — may replace the default
    uniform split; it must match ``grid``'s rank ordering.

    ``faults`` attaches a fault injector to the simulated world (a
    :class:`~repro.runtime.faults.FaultInjector` or a spec string such
    as ``"drop:p=0.2"``); the ``async`` exchanger then runs its
    retransmission protocol (see ``docs/RESILIENCE.md``).

    ``exchange_mode`` selects the async exchanger's wire protocol
    (``"basic"``/``"diag"``/``"overlap"``); results are bit-identical
    across modes.  Leave ``None`` to use the strategy's default.
    """
    grid = tuple(int(g) for g in grid)
    out = stencil.output
    if len(grid) != out.ndim:
        raise ValueError(
            f"MPI grid is {len(grid)}-D for a {out.ndim}-D stencil"
        )
    # run-ledger fingerprint plumbing: a no-op unless a CLI command is
    # collecting a record (see repro.obs.ledger)
    from ..obs import ledger as obs_ledger

    obs_ledger.note(config={
        "mpi_grid": list(grid),
        "exchanger": exchanger,
        "exchange_mode": exchange_mode or "default",
        "boundary": boundary,
        "dist_timesteps": int(timesteps),
    })
    nprocs = 1
    for g in grid:
        nprocs *= g
    if subdomains is None:
        subdomains = decompose(out.shape, grid)
    else:
        subdomains = list(subdomains)
        if len(subdomains) != nprocs:
            raise ValueError(
                f"custom decomposition has {len(subdomains)} sub-domains "
                f"for {nprocs} ranks"
            )
    # every sub-domain must be at least as wide as the halo so the
    # inner-halo strips do not overlap
    for sd in subdomains:
        for s, h in zip(sd.shape, out.halo):
            if s < h:
                raise ValueError(
                    f"sub-domain {sd.shape} narrower than halo {out.halo}; "
                    "use a smaller MPI grid"
                )
    need = stencil.required_time_window - 1
    if len(init) != need:
        raise ValueError(f"need {need} initial planes, got {len(init)}")
    init = [np.asarray(p, dtype=out.dtype.np_dtype) for p in init]
    aux_tensors = {}
    for kern in stencil.kernels:
        for tensor in kern.input_tensors:
            if tensor.name != out.name:
                aux_tensors[tensor.name] = tensor
    for name in aux_tensors:
        if inputs is None or name not in inputs:
            raise ValueError(f"missing data for auxiliary tensor {name!r}")

    periods = tuple(boundary == "periodic" for _ in grid)

    def rank_main(comm: CartComm):
        dist = DistributedStencil(
            stencil, comm, subdomains, boundary, exchanger,
            scalars=scalars, exchange_mode=exchange_mode,
        )
        for name, tensor in aux_tensors.items():
            dist.set_static_input(name, tensor, np.asarray(inputs[name]))
        with span("runtime.seed", rank=comm.rank):
            for t, plane in enumerate(init):
                dist.seed(t, plane)
        for _ in range(timesteps):
            dist.step()
        # the last plane's overlap exchange (if any) must drain before
        # the gather so the trace DAG stays well-formed
        dist.finalize()
        with span("runtime.gather", rank=comm.rank):
            pieces = comm.gather(
                (dist.sub.rank, dist.local_result()), root=0
            )
        if comm.rank != 0:
            return None
        result = np.zeros(out.shape, dtype=out.dtype.np_dtype)
        for item in pieces:
            rank, data = item
            sd = subdomains[int(rank)]
            result[sd.slices()] = data
        return result

    mode = exchange_mode or "default"
    counter("runtime.runs", backend="numpy", exchange_mode=mode)
    with span("runtime.distributed_run", stencil=out.name,
              nprocs=nprocs, grid=str(grid), timesteps=timesteps,
              exchanger=exchanger, backend="numpy",
              exchange_mode=mode,
              faulty=faults is not None):
        emit("phase.enter", phase="distributed_run", stencil=out.name,
             nprocs=nprocs, exchange_mode=mode)
        try:
            results = run_ranks(
                nprocs, rank_main, cart_dims=grid, periods=periods,
                faults=faults,
                scope_attrs={"backend": "numpy", "exchange_mode": mode},
            )
        finally:
            emit("phase.exit", phase="distributed_run", stencil=out.name)
    return results[0]
