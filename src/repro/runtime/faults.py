"""Deterministic fault injection for the simulated MPI fabric.

The paper's communication library must survive a real interconnect at
1024 processes (Sec. 5.3/5.5); this module lets the simulated runtime
model that interconnect misbehaving.  A :class:`FaultInjector` is
attached to a world (``run_ranks(..., faults=...)``) and consulted on
every data-plane message:

- **drop**    — the message is silently discarded,
- **delay**   — delivery is postponed by a fixed interval,
- **dup**     — the message is delivered twice,
- **reorder** — the message jumps the mailbox queue,
- **crash**   — a chosen rank dies at a chosen operation.

Decisions are **deterministic given the seed** regardless of thread
scheduling: each message is identified by ``(source, dest, tag,
per-stream index)`` and the verdict is a keyed hash of that identity,
not a draw from a shared RNG whose call order would depend on the OS
scheduler.  Two runs with the same seed inject faults into exactly the
same messages.

Control-plane messages (the exchanger's ACKs, sent with
``reliable=True``) are exempt from drop/delay/dup/reorder — the model
is a lossy bulk-data fabric with a reliable small-message channel — but
no message escapes a crashed rank.

Spec grammar (CLI ``--inject-faults``)::

    SPEC     := CLAUSE ("," CLAUSE)*
    CLAUSE   := KIND (":" KEY "=" VALUE)*
    KIND     := drop | delay | dup | reorder | crash

    drop:p=0.2            drop 20% of data messages
    delay:p=0.1:s=0.02    delay 10% of messages by 20 ms
    dup:p=0.05            duplicate 5% of messages
    reorder:p=0.1         queue-jump 10% of messages
    crash:rank=2:step=5   rank 2 dies at its 5th send operation
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..obs import counter
from ..obs.events import emit

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "MessageVerdict",
    "parse_fault_spec",
]

_KINDS = ("drop", "delay", "dup", "reorder", "crash")

_DEFAULT_DELAY_S = 0.02


@dataclass(frozen=True)
class FaultSpec:
    """One fault clause of an injection spec."""

    kind: str
    probability: float = 0.0
    delay_s: float = _DEFAULT_DELAY_S
    rank: int = -1
    step: int = -1

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if self.kind == "crash":
            if self.rank < 0 or self.step < 1:
                raise ValueError(
                    "crash faults need rank=R (>=0) and step=K (>=1), "
                    f"got rank={self.rank} step={self.step}"
                )
        else:
            if not 0.0 <= self.probability <= 1.0:
                raise ValueError(
                    f"{self.kind} probability must be in [0, 1], got "
                    f"{self.probability}"
                )
        if self.delay_s < 0:
            raise ValueError(f"negative delay {self.delay_s}")


def parse_fault_spec(text: str) -> List[FaultSpec]:
    """Parse a ``--inject-faults`` spec string (see module grammar)."""
    specs: List[FaultSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip()
        kwargs: Dict[str, float] = {}
        if rest:
            for pair in rest.split(":"):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault clause {clause!r}: expected "
                        f"KEY=VALUE, got {pair!r}"
                    )
                key = key.strip()
                try:
                    num = float(value)
                except ValueError:
                    raise ValueError(
                        f"fault clause {clause!r}: non-numeric value "
                        f"{value!r}"
                    ) from None
                if key == "p":
                    kwargs["probability"] = num
                elif key == "s":
                    kwargs["delay_s"] = num
                elif key == "ms":
                    kwargs["delay_s"] = num * 1e-3
                elif key == "rank":
                    kwargs["rank"] = int(num)
                elif key == "step":
                    kwargs["step"] = int(num)
                else:
                    raise ValueError(
                        f"fault clause {clause!r}: unknown key {key!r}"
                    )
        specs.append(FaultSpec(kind=kind, **kwargs))
    if not specs:
        raise ValueError(f"empty fault spec {text!r}")
    return specs


@dataclass(frozen=True)
class MessageVerdict:
    """The injector's decision for one data-plane message."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    delay_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.reorder
                    or self.delay_s > 0.0)


_CLEAN = MessageVerdict()


def _hash_fraction(seed: int, kind: str, stream: Tuple[int, int, int],
                   index: int) -> float:
    """Uniform [0, 1) value keyed on (seed, kind, message identity)."""
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack(">q", seed))
    h.update(kind.encode())
    h.update(struct.pack(">qqqq", *stream, index))
    return int.from_bytes(h.digest(), "big") / 2.0 ** 64


class FaultInjector:
    """Seeded, deterministic fault oracle for one simulated world.

    Thread-safe; decisions depend only on ``(seed, source, dest, tag,
    per-stream message index)``, never on wall clock or thread order.
    """

    def __init__(self, specs: "Sequence[FaultSpec] | str",
                 seed: int = 0):
        if isinstance(specs, str):
            specs = parse_fault_spec(specs)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._stream_index: Dict[Tuple[int, int, int], int] = {}
        self._ops_by_rank: Dict[int, int] = {}
        self.counts: Dict[str, int] = {k: 0 for k in _KINDS}
        self._crashes = [s for s in self.specs if s.kind == "crash"]

    def reset(self) -> None:
        """Forget all message/op history (counters included)."""
        with self._lock:
            self._stream_index.clear()
            self._ops_by_rank.clear()
            self.counts = {k: 0 for k in _KINDS}

    # -- data plane ------------------------------------------------------
    def on_message(self, source: int, dest: int,
                   tag: int) -> MessageVerdict:
        """Verdict for the next message on the (source, dest, tag) stream."""
        stream = (source, dest, tag)
        with self._lock:
            index = self._stream_index.get(stream, 0)
            self._stream_index[stream] = index + 1
        drop = dup = reorder = False
        delay_s = 0.0
        for spec in self.specs:
            if spec.kind == "crash" or spec.probability <= 0.0:
                continue
            u = _hash_fraction(self.seed, spec.kind, stream, index)
            if u >= spec.probability:
                continue
            if spec.kind == "drop":
                drop = True
            elif spec.kind == "dup":
                dup = True
            elif spec.kind == "reorder":
                reorder = True
            elif spec.kind == "delay":
                delay_s = max(delay_s, spec.delay_s)
        if drop:  # a dropped message is dropped, full stop
            dup = reorder = False
            delay_s = 0.0
        if not (drop or dup or reorder or delay_s):
            return _CLEAN
        with self._lock:
            for kind, hit in (("drop", drop), ("dup", dup),
                              ("reorder", reorder),
                              ("delay", delay_s > 0.0)):
                if hit:
                    self.counts[kind] += 1
        for kind, hit in (("drop", drop), ("dup", dup),
                          ("reorder", reorder), ("delay", delay_s > 0.0)):
            if hit:
                counter(f"faults.{kind}", src=source, dst=dest)
                emit(f"faults.{kind}", level="warn", src=source, dst=dest,
                     tag=tag)
        return MessageVerdict(drop=drop, duplicate=dup, reorder=reorder,
                              delay_s=delay_s)

    # -- crash plane -----------------------------------------------------
    def crash_due(self, rank: int) -> bool:
        """Advance ``rank``'s operation counter; True if it dies now.

        Called by the runtime once per send operation the rank
        initiates; the Kth operation of a ``crash:rank=R:step=K`` spec
        is the one that kills it.
        """
        if not self._crashes:
            return False
        with self._lock:
            ops = self._ops_by_rank.get(rank, 0) + 1
            self._ops_by_rank[rank] = ops
            for spec in self._crashes:
                if spec.rank == rank and ops == spec.step:
                    self.counts["crash"] += 1
                    counter("faults.crash", rank=rank, step=spec.step)
                    emit("faults.crash", level="error", rank=rank,
                         step=spec.step)
                    return True
        return False

    # -- reporting -------------------------------------------------------
    def summary(self) -> str:
        """One-line human summary, e.g. ``drop=3 delay=1``."""
        hits = {k: v for k, v in self.counts.items() if v}
        if not hits:
            return "no faults injected"
        return " ".join(f"{k}={v}" for k, v in sorted(hits.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        clauses = ",".join(s.kind for s in self.specs)
        return f"FaultInjector({clauses!r}, seed={self.seed})"
