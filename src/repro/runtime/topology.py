"""Graph-based interconnect topologies (networkx).

The closed-form :class:`~repro.runtime.network.NetworkModel` captures
endpoint and bisection limits with two constants; this module builds
the *actual* interconnect graph — fat trees and tori — routes every
halo message along shortest paths, and reports per-link loads.  It
serves two purposes:

- validating the closed-form model's congestion constants (the max
  link load over a full exchange wavefront is the quantity
  ``bisection_GBs`` abstracts), and
- supporting the paper's claim that the communication library "enables
  easy adaption to supercomputers or large clusters installed with
  exotic network topologies": a topology is just a graph + placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..comm.decomposition import decompose
from ..ir.stencil import Stencil

__all__ = [
    "Topology",
    "fat_tree",
    "torus",
    "route_exchange",
    "ExchangeLoad",
]


@dataclass(frozen=True)
class Topology:
    """An interconnect graph plus a rank→node placement.

    Nodes carry a ``kind`` attribute (``"host"`` or ``"switch"``);
    ranks are placed on hosts round-robin in rank order (the default
    scheduler placement).
    """

    graph: "nx.Graph"
    hosts: Tuple[str, ...]
    link_bw_GBs: float

    def host_of(self, rank: int) -> str:
        return self.hosts[rank % len(self.hosts)]

    @property
    def nswitches(self) -> int:
        return sum(
            1 for _, d in self.graph.nodes(data=True)
            if d.get("kind") == "switch"
        )


def fat_tree(nhosts: int, radix: int = 8,
             link_bw_GBs: float = 8.0,
             up_ratio: float = 1.0) -> Topology:
    """A two-level fat tree: leaf switches of ``radix`` hosts, one core
    layer.  ``up_ratio`` < 1 models over-subscription (fewer uplinks
    than downlinks — the cheap-cluster configuration that congests).
    """
    if nhosts < 1:
        raise ValueError("nhosts must be >= 1")
    graph = nx.Graph()
    hosts: List[str] = []
    nleaf = -(-nhosts // radix)
    nup = max(1, int(radix * up_ratio / 2))
    ncore = max(1, nup)
    for c in range(ncore):
        graph.add_node(f"core{c}", kind="switch")
    for leaf in range(nleaf):
        lname = f"leaf{leaf}"
        graph.add_node(lname, kind="switch")
        for c in range(ncore):
            graph.add_edge(lname, f"core{c}")
        for h in range(radix):
            idx = leaf * radix + h
            if idx >= nhosts:
                break
            hname = f"host{idx}"
            graph.add_node(hname, kind="host")
            graph.add_edge(hname, lname)
            hosts.append(hname)
    return Topology(graph, tuple(hosts), link_bw_GBs)


def torus(dims: Sequence[int], link_bw_GBs: float = 8.0) -> Topology:
    """A k-ary n-dimensional torus of hosts (no separate switches)."""
    dims = tuple(int(d) for d in dims)
    if any(d < 1 for d in dims):
        raise ValueError(f"invalid torus dims {dims}")
    graph = nx.Graph()
    hosts: List[str] = []
    coords = list(itertools.product(*(range(d) for d in dims)))
    name = {c: "t" + "_".join(map(str, c)) for c in coords}
    for c in coords:
        graph.add_node(name[c], kind="host")
        hosts.append(name[c])
    for c in coords:
        for d in range(len(dims)):
            nb = list(c)
            nb[d] = (nb[d] + 1) % dims[d]
            if dims[d] > 1:
                graph.add_edge(name[c], name[tuple(nb)])
    return Topology(graph, tuple(hosts), link_bw_GBs)


@dataclass(frozen=True)
class ExchangeLoad:
    """Per-link loads of one full halo-exchange wavefront."""

    link_bytes: Dict[Tuple[str, str], float]
    total_bytes: int
    max_link_bytes: float
    link_bw_GBs: float

    @property
    def congestion_time_s(self) -> float:
        """Serialisation time of the hottest link."""
        return self.max_link_bytes / (self.link_bw_GBs * 1e9)

    @property
    def mean_link_bytes(self) -> float:
        if not self.link_bytes:
            return 0.0
        return self.total_bytes_on_links / len(self.link_bytes)

    @property
    def total_bytes_on_links(self) -> int:
        return sum(self.link_bytes.values())

    @property
    def hotspot_factor(self) -> float:
        """max/mean link load — 1.0 means perfectly spread traffic."""
        mean = self.mean_link_bytes
        return self.max_link_bytes / mean if mean else 0.0


def route_exchange(stencil: Stencil, grid: Sequence[int],
                   topology: Topology,
                   periodic: bool = True) -> ExchangeLoad:
    """Route one timestep's halo exchange over the topology.

    Every process sends each neighbour its face bytes; message bytes
    are split evenly over all shortest paths (ECMP routing).  Returns
    the per-link byte loads.
    """
    grid = tuple(int(g) for g in grid)
    nprocs = 1
    for g in grid:
        nprocs *= g
    if nprocs > len(topology.hosts):
        raise ValueError(
            f"{nprocs} ranks need more hosts than the topology's "
            f"{len(topology.hosts)}"
        )
    subdomains = decompose(stencil.output.shape, grid)
    elem = stencil.output.dtype.nbytes
    rad = stencil.radius
    ndim = len(grid)

    link_bytes: Dict[Tuple[str, str], float] = {}
    total = 0
    path_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    def add(src_host: str, dst_host: str, nbytes: int) -> None:
        """ECMP routing: bytes split evenly over all shortest paths."""
        nonlocal total
        total += nbytes
        key_pair = (src_host, dst_host)
        if key_pair not in path_cache:
            path_cache[key_pair] = list(
                nx.all_shortest_paths(topology.graph, src_host, dst_host)
            )
        routes = path_cache[key_pair]
        share = nbytes / len(routes)
        for path in routes:
            for a, b in zip(path, path[1:]):
                key = (a, b) if a < b else (b, a)
                link_bytes[key] = link_bytes.get(key, 0.0) + share

    for sd in subdomains:
        for d in range(ndim):
            if rad[d] == 0:
                continue
            face = elem * rad[d]
            for dd, s in enumerate(sd.shape):
                if dd != d:
                    face *= s
            for delta in (-1, +1):
                coords = list(sd.coords)
                coords[d] += delta
                if periodic:
                    coords[d] %= grid[d]
                elif not 0 <= coords[d] < grid[d]:
                    continue
                peer = 0
                for c, g in zip(coords, grid):
                    peer = peer * g + c
                src = topology.host_of(sd.rank)
                dst = topology.host_of(peer)
                if src != dst:
                    add(src, dst, face)
    max_link = max(link_bytes.values(), default=0.0)
    return ExchangeLoad(
        link_bytes=link_bytes,
        total_bytes=total,
        max_link_bytes=max_link,
        link_bw_GBs=topology.link_bw_GBs,
    )
