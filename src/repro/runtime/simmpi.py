"""Simulated MPI: an in-process message-passing runtime.

mpi4py is not available in this environment, so the communication
library runs on this runtime instead: every rank is a Python thread,
messages are numpy-buffer copies matched by ``(source, tag)`` in FIFO
order, and the API mirrors mpi4py's buffer interface (``Send``/
``Recv``/``Isend``/``Irecv``/``Sendrecv``, ``Barrier``, ``Bcast``,
``Allreduce``, ``Gather``, plus Cartesian communicators with
``Shift``).  Functional behaviour — who receives which bytes — is
exactly MPI's; timing comes from the separate
:mod:`~repro.runtime.network` model.

Deadlock safety: every blocking receive carries a timeout (default
60 s); expiry raises :class:`SimMPITimeout` in the offending rank and
the run reports it instead of hanging the test suite.  Timeouts are
tracked against a monotonic-clock deadline and waits are event-driven
(condition variables, no polling interval), so heavy ``notify_all``
traffic neither shrinks nor stretches a rank's deadline.

Fault injection: a :class:`~repro.runtime.faults.FaultInjector` may be
attached to a world (``run_ranks(..., faults=...)``); it then vets
every data-plane message for drop/delay/duplication/reordering and can
crash a rank at a chosen operation.  Messages sent with
``reliable=True`` (the exchanger's ACKs, collective payloads) bypass
message faults but nothing escapes a crashed rank.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import rank_scope, span
from ..obs.trace import attach_flow
from ..obs.trace import is_enabled as _trace_enabled

__all__ = [
    "SimMPIError",
    "SimMPITimeout",
    "RankCrashedError",
    "Request",
    "Communicator",
    "CartComm",
    "run_ranks",
]

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 60.0


class SimMPIError(RuntimeError):
    """A communication error in the simulated MPI runtime."""


class SimMPITimeout(SimMPIError):
    """No matching message arrived within the deadline.

    The only *retryable* failure: pollers (``Request.Test``, the
    resilient exchanger) treat it as "not ready yet"; every other
    :class:`SimMPIError` is terminal and must propagate.
    """


class RankCrashedError(SimMPIError):
    """An injected fault killed this rank (see ``runtime.faults``)."""


class _World:
    """Shared state of one simulated MPI world."""

    def __init__(self, size: int, injector=None):
        self.size = size
        self.lock = threading.Condition()
        # mailbox per destination: deque of
        # (source, tag, ndarray copy, flow id or None)
        self.mail: List[deque] = [deque() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.bcast_slots: Dict[int, Any] = {}
        self.reduce_slots: Dict[str, list] = {}
        self.failed = threading.Event()
        self.injector = injector
        self.crashed: set = set()
        #: delivery generation — bumped on every mailbox change so
        #: waiters can detect activity without polling
        self.events = 0
        # traffic accounting (bytes by (src, dst))
        self.traffic: Dict[Tuple[int, int], int] = {}
        # per-(src, dst, tag) monotonically increasing message sequence
        # numbers — the flow identity stamped on send and recv spans
        self._flow_seq: Dict[Tuple[int, int, int], int] = {}

    def _flow_id(self, source: int, dest: int, tag: int) -> str:
        """Allocate the next ``(src, dst, tag, seq)`` flow identity.

        Every *physical* send gets a fresh seq (a retransmission is a
        new flow; an injected duplicate shares its original's), so a
        flow edge in the merged timeline always names the copy the
        receiver actually consumed.
        """
        key = (source, dest, tag)
        with self.lock:
            seq = self._flow_seq.get(key, 0)
            self._flow_seq[key] = seq + 1
        return f"{source}>{dest}:{tag}#{seq}"

    def _deliver(self, source: int, dest: int, tag: int,
                 data: np.ndarray, flow: Optional[str] = None,
                 front: bool = False) -> None:
        with self.lock:
            if front:
                self.mail[dest].appendleft((source, tag, data, flow))
            else:
                self.mail[dest].append((source, tag, data, flow))
            key = (source, dest)
            self.traffic[key] = self.traffic.get(key, 0) + data.nbytes
            self.events += 1
            self.lock.notify_all()

    def mark_crashed(self, rank: int) -> None:
        """Record an injected rank death and wake every waiter."""
        with self.lock:
            self.crashed.add(rank)
            self.failed.set()
            self.events += 1
            self.lock.notify_all()
        self.barrier.abort()

    def post(self, source: int, dest: int, tag: int,
             data: np.ndarray, reliable: bool = False,
             track_flow: Optional[bool] = None) -> Optional[str]:
        """Send one message; returns its flow id when tracked.

        Data-plane messages are flow-tracked while tracing is enabled
        (control-plane ``reliable`` traffic is not, unless forced via
        ``track_flow=True``): each physical copy posted here carries a
        ``(src, dst, tag, seq)`` identity that the receiver's span
        records, giving the merged timeline its cross-rank edges.
        """
        track = (not reliable) if track_flow is None else track_flow
        flow = (
            self._flow_id(source, dest, tag)
            if track and _trace_enabled() else None
        )
        inj = self.injector
        if inj is not None:
            if inj.crash_due(source):
                self.mark_crashed(source)
                raise RankCrashedError(
                    f"rank {source} crashed (injected fault)"
                )
            if not reliable:
                verdict = inj.on_message(source, dest, tag)
                if verdict.drop:
                    return flow
                copies = 2 if verdict.duplicate else 1
                if verdict.delay_s > 0.0:
                    for _ in range(copies):
                        timer = threading.Timer(
                            verdict.delay_s, self._deliver,
                            args=(source, dest, tag, data, flow),
                            kwargs={"front": verdict.reorder},
                        )
                        timer.daemon = True
                        timer.start()
                    return flow
                for _ in range(copies):
                    self._deliver(source, dest, tag, data, flow,
                                  front=verdict.reorder)
                return flow
        self._deliver(source, dest, tag, data, flow)
        return flow

    def take(self, dest: int, source: int, tag: int,
             timeout: float) -> Tuple[int, int, np.ndarray, Optional[str]]:
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self.lock:
            while True:
                box = self.mail[dest]
                for idx, (src, tg, data, flow) in enumerate(box):
                    if (source in (ANY_SOURCE, src)
                            and tag in (ANY_TAG, tg)):
                        del box[idx]
                        return src, tg, data, flow
                if self.crashed:
                    names = ",".join(str(r) for r in sorted(self.crashed))
                    raise SimMPIError(
                        f"rank {dest}: peer rank {names} crashed while "
                        f"waiting for a message from {source} tag {tag}"
                    )
                if self.failed.is_set():
                    raise SimMPIError(
                        f"rank {dest}: peer failed while waiting for a "
                        f"message from {source} tag {tag}"
                    )
                if deadline is None:
                    self.lock.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimMPITimeout(
                        f"rank {dest}: timeout waiting for message from "
                        f"{source} tag {tag} (likely deadlock)"
                    )
                self.lock.wait(remaining)


class Request:
    """A nonblocking-operation handle (mpi4py-style)."""

    def __init__(self, fn: Optional[Callable[[float], Any]] = None,
                 done: bool = True, value: Any = None):
        self._fn = fn
        self._done = done
        self._value = value

    def Wait(self, timeout: float = _DEFAULT_TIMEOUT) -> Any:
        if not self._done:
            self._value = self._fn(timeout)
            self._done = True
        return self._value

    wait = Wait

    def Test(self) -> bool:
        """Poll for completion without blocking.

        Only the zero-timeout "no matching message yet" case
        (:class:`SimMPITimeout`) reads as not-done; terminal errors — a
        crashed peer, message truncation — re-raise so the caller never
        spins on an operation that can no longer complete.
        """
        if self._done:
            return True
        try:
            self._value = self._fn(0.0)
            self._done = True
        except SimMPITimeout:
            return False
        return True

    test = Test

    @staticmethod
    def Waitall(requests: Sequence["Request"],
                timeout: float = _DEFAULT_TIMEOUT) -> None:
        """Wait for all requests against one *shared* deadline.

        ``timeout`` bounds the whole batch, not each request — N stuck
        requests fail after ``timeout``, not ``N * timeout``.
        """
        deadline = time.monotonic() + timeout
        for req in requests:
            req.Wait(max(0.0, deadline - time.monotonic()))


class Communicator:
    """One rank's endpoint into the simulated world."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size
        # recv flows parked by defer_flow receives (see Recv) — this
        # rank's thread only, so a plain list is safe
        self._parked_flows: List[str] = []

    # -- rank info (mpi4py spelling) ------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def faults_active(self) -> bool:
        """True when a fault injector is attached to this world."""
        return self._world.injector is not None

    # -- point to point ----------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise SimMPIError(
                f"rank {self.rank}: invalid peer {peer} "
                f"(world size {self.size})"
            )

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0,
             reliable: bool = False) -> None:
        """Buffered send: the payload is copied at send time.

        ``reliable=True`` marks a control-plane message (exchanger ACKs,
        collective payloads) that injected message faults must not
        touch; a crashed rank still cannot send it.

        ``buf`` may be a strided (non-contiguous) view: the copy made
        here is the only one, so callers can hand halo strips of the
        padded plane straight to ``Send``/``Isend`` without staging
        them first (zero-copy packing on the caller's side).
        """
        self._check_peer(dest)
        data = np.ascontiguousarray(buf)
        if data is buf:  # already contiguous: still need a private copy
            data = data.copy()
        flow = self._world.post(self.rank, dest, tag, data,
                                reliable=reliable)
        if flow is not None:
            attach_flow("send", flow)

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, timeout: float = _DEFAULT_TIMEOUT,
             defer_flow: bool = False) -> Tuple[int, int, int]:
        """Receive into ``buf``; returns (source, tag, count).

        As in MPI, the message may be *smaller* than the receive buffer
        (the prefix is filled and ``count`` reports the element count);
        a larger message is a truncation error.

        ``buf`` may also be a strided (non-contiguous) view — e.g. a
        ghost strip of the padded plane — in which case the payload is
        scattered straight into the view (a strided receive is the
        other half of zero-copy packing).  Strided receives require an
        exact size match: there is no meaningful "prefix" of a strided
        region.

        A flow-tracked message's id is recorded on the innermost open
        span — unless ``defer_flow`` is set, which parks it for
        :meth:`pop_parked_flow` so a caller completing receives inside
        a progress loop (the resilient exchanger) can re-home the flow
        onto the span that actually consumes the data.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        src, tg, data, flow = self._world.take(
            self.rank, source, tag, timeout
        )
        if buf.flags.c_contiguous:
            flat = buf.reshape(-1)
            if data.size > flat.size:
                raise SimMPIError(
                    f"rank {self.rank}: message truncation — message from "
                    f"{src} tag {tg} has {data.size} elements, receive "
                    f"buffer only {flat.size}"
                )
            flat[: data.size] = data.reshape(-1)
        else:
            # strided view: reshape(-1) would copy and the write would
            # be lost, so scatter element-for-element into the view
            if data.size != buf.size:
                raise SimMPIError(
                    f"rank {self.rank}: strided receive needs an exact "
                    f"size match — message from {src} tag {tg} has "
                    f"{data.size} elements, view has {buf.size}"
                )
            buf[...] = data.reshape(buf.shape)
        if flow is not None:
            if defer_flow:
                self._parked_flows.append(flow)
            else:
                attach_flow("recv", flow)
        return src, tg, data.size

    def pop_parked_flow(self) -> Optional[str]:
        """Oldest flow id parked by a ``defer_flow`` receive, if any."""
        return self._parked_flows.pop(0) if self._parked_flows else None

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0,
              reliable: bool = False) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self.Send(buf, dest, tag, reliable=reliable)
        return Request(done=True)

    def Irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG, defer_flow: bool = False) -> Request:
        """Nonblocking receive completing at Wait()."""

        def complete(timeout: float):
            return self.Recv(buf, source, tag, timeout=timeout,
                             defer_flow=defer_flow)

        return Request(fn=complete, done=False)

    def Sendrecv(self, sendbuf: np.ndarray, dest: int,
                 recvbuf: np.ndarray, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> None:
        """Combined send+receive (deadlock-free)."""
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag)

    # -- collectives -----------------------------------------------------------
    def Barrier(self, timeout: float = _DEFAULT_TIMEOUT) -> None:
        try:
            self._world.barrier.wait(timeout)
        except threading.BrokenBarrierError:
            raise SimMPIError(
                f"rank {self.rank}: barrier broken (peer failure/timeout)"
            ) from None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Generic-object broadcast.

        Non-root ranks receive a **deep copy**, exactly as real MPI
        deserialises a fresh object per rank — one rank mutating its
        result can never corrupt the others.
        """
        world = self._world
        with world.lock:
            if self.rank == root:
                world.bcast_slots[root] = obj
                world.lock.notify_all()
            else:
                deadline = time.monotonic() + _DEFAULT_TIMEOUT
                while root not in world.bcast_slots:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise SimMPITimeout("bcast timeout")
                    world.lock.wait(remaining)
                obj = copy.deepcopy(world.bcast_slots[root])
        self.Barrier()
        if self.rank == root:
            with world.lock:
                world.bcast_slots.pop(root, None)
        self.Barrier()
        return obj

    def allreduce(self, value, op: str = "sum"):
        """Scalar all-reduce: op in {sum, max, min}."""
        if op not in ("sum", "max", "min"):
            raise ValueError(f"unsupported allreduce op {op!r}")
        world = self._world
        key = f"reduce-{op}"
        with world.lock:
            slot = world.reduce_slots.setdefault(key, [None] * self.size)
            slot[self.rank] = value
        self.Barrier()
        with world.lock:
            vals = world.reduce_slots[key]
            fn = {"sum": sum, "max": max, "min": min}[op]
            result = fn(vals)
        self.Barrier()
        if self.rank == 0:
            with world.lock:
                world.reduce_slots.pop(key, None)
        self.Barrier()
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Generic-object gather to ``root``."""
        tag = 1 << 20
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[self.rank] = obj
            for _ in range(self.size - 1):
                src, _, data, flow = self._world.take(
                    self.rank, ANY_SOURCE, tag, _DEFAULT_TIMEOUT
                )
                if flow is not None:
                    attach_flow("recv", flow)
                out[src] = data.item(0)
            return out
        # objects ride the numpy mailbox inside 1-element object arrays;
        # collectives travel the reliable channel (only point-to-point
        # halo traffic is subject to message faults).  Gather payloads
        # are still flow-tracked: the root's collect genuinely depends
        # on every rank, and the critical path should see that.
        box = np.empty(1, dtype=object)
        box[0] = obj
        flow = self._world.post(self.rank, root, tag, box,
                                reliable=True, track_flow=True)
        if flow is not None:
            attach_flow("send", flow)
        return None

    # -- topology -----------------------------------------------------------------
    def Create_cart(self, dims: Sequence[int],
                    periods: Optional[Sequence[bool]] = None) -> "CartComm":
        return CartComm(self._world, self.rank, tuple(dims), periods)

    # -- progress -----------------------------------------------------------------
    def activity(self) -> int:
        """Current delivery generation (see :meth:`wait_for_activity`)."""
        with self._world.lock:
            return self._world.events

    def wait_for_activity(self, timeout: float,
                          seen: Optional[int] = None) -> int:
        """Block until the world delivers something, or ``timeout``.

        ``seen`` is a generation returned by :meth:`activity`; if
        anything was delivered since that snapshot the call returns
        immediately, closing the check-then-wait race without a polling
        loop.  Returns the new generation.
        """
        world = self._world
        deadline = time.monotonic() + timeout
        with world.lock:
            while seen is None or world.events == seen:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                world.lock.wait(remaining)
                if seen is None:
                    break
            return world.events

    # -- accounting ----------------------------------------------------------------
    def traffic_bytes(self) -> int:
        """Total bytes this world has moved so far."""
        with self._world.lock:
            return sum(self._world.traffic.values())


class CartComm(Communicator):
    """Cartesian communicator: row-major rank ↔ coordinates mapping."""

    def __init__(self, world: _World, rank: int, dims: Tuple[int, ...],
                 periods: Optional[Sequence[bool]] = None):
        super().__init__(world, rank)
        n = 1
        for d in dims:
            if d < 1:
                raise ValueError(f"invalid cart dims {dims}")
            n *= d
        if n != world.size:
            raise ValueError(
                f"cart dims {dims} require {n} ranks, world has {world.size}"
            )
        self.dims = dims
        self.periods = (
            tuple(bool(p) for p in periods)
            if periods is not None else (False,) * len(dims)
        )
        if len(self.periods) != len(dims):
            raise ValueError("periods length must match dims")

    def Get_coords(self, rank: int) -> Tuple[int, ...]:
        coords = []
        rem = rank
        for d in reversed(self.dims):
            coords.append(rem % d)
            rem //= d
        return tuple(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        rank = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            if not 0 <= c < d:
                raise ValueError(
                    f"coordinate {c} out of range for extent {d} "
                    "(non-periodic)"
                )
            rank = rank * d + c
        return rank

    def Shift(self, direction: int, disp: int = 1) -> Tuple[int, int]:
        """(source, dest) ranks for a shift; -1 marks 'no neighbour'."""
        coords = list(self.Get_coords(self.rank))

        def neighbour(delta: int) -> int:
            c = list(coords)
            c[direction] += delta
            if self.periods[direction]:
                c[direction] %= self.dims[direction]
            elif not 0 <= c[direction] < self.dims[direction]:
                return -1
            return self.Get_cart_rank(c)

        return neighbour(-disp), neighbour(+disp)


def _error_severity(exc: BaseException) -> int:
    """Root-cause ordering: app errors, then injected crashes, then
    other comm errors, then timeouts (which are usually consequences)."""
    if not isinstance(exc, SimMPIError):
        return 0
    if isinstance(exc, RankCrashedError):
        return 1
    if not isinstance(exc, SimMPITimeout):
        return 2
    return 3


def run_ranks(nprocs: int, main: Callable[[Communicator], Any],
              cart_dims: Optional[Sequence[int]] = None,
              periods: Optional[Sequence[bool]] = None,
              timeout: float = 120.0, faults=None,
              scope_attrs: Optional[Dict[str, Any]] = None) -> List[Any]:
    """Run ``main(comm)`` on ``nprocs`` simulated ranks; return results.

    This is the ``mpiexec -n`` of the simulated runtime.  If any rank
    raises, the root-cause exception is re-raised after all threads
    stop, with per-rank diagnostics when several ranks failed.

    ``faults`` attaches a fault injector to the world: a
    :class:`~repro.runtime.faults.FaultInjector`, a spec string such as
    ``"drop:p=0.2"``, or a sequence of ``FaultSpec``.

    ``scope_attrs`` (e.g. ``backend=``, ``exchange_mode=``) join each
    rank thread's span scope alongside ``rank=``, so every span a rank
    emits can be grouped by run configuration.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    injector = faults
    if faults is not None and not hasattr(faults, "on_message"):
        from .faults import FaultInjector

        injector = FaultInjector(faults)
    world = _World(nprocs, injector=injector)
    results: List[Any] = [None] * nprocs
    errors: List[Tuple[int, BaseException]] = []

    def entry(rank: int) -> None:
        try:
            # every span/counter on this thread carries rank=, under a
            # per-rank root span — the merged-timeline track for this
            # rank (see repro.obs.distributed)
            with rank_scope(rank, **(scope_attrs or {})), \
                    span("runtime.rank", rank=rank):
                comm: Communicator = Communicator(world, rank)
                if cart_dims is not None:
                    comm = CartComm(world, rank, tuple(cart_dims),
                                    periods)
                results[rank] = main(comm)
        except BaseException as exc:  # noqa: BLE001 - report to caller
            errors.append((rank, exc))
            world.failed.set()
            world.barrier.abort()

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nprocs)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout)
        if th.is_alive():
            world.failed.set()
            world.barrier.abort()
            raise SimMPIError(
                f"{th.name} did not finish within {timeout}s (deadlock?)"
            )
    if errors:
        # prefer the root cause: secondary SimMPIErrors (broken barriers,
        # peer-failure aborts, timeouts) are consequences, not causes
        rank, exc = min(
            errors, key=lambda e: (_error_severity(e[1]), e[0])
        )
        message = f"rank {rank} failed: {exc!r}"
        if len(errors) > 1:
            lines = "\n".join(
                f"  rank {r}: {type(e).__name__}: {e}"
                for r, e in sorted(errors, key=lambda item: item[0])
            )
            message += f"\nper-rank diagnostics:\n{lines}"
        raise SimMPIError(message) from exc
    return results
