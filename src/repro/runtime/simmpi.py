"""Simulated MPI: an in-process message-passing runtime.

mpi4py is not available in this environment, so the communication
library runs on this runtime instead: every rank is a Python thread,
messages are numpy-buffer copies matched by ``(source, tag)`` in FIFO
order, and the API mirrors mpi4py's buffer interface (``Send``/
``Recv``/``Isend``/``Irecv``/``Sendrecv``, ``Barrier``, ``Bcast``,
``Allreduce``, ``Gather``, plus Cartesian communicators with
``Shift``).  Functional behaviour — who receives which bytes — is
exactly MPI's; timing comes from the separate
:mod:`~repro.runtime.network` model.

Deadlock safety: every blocking receive carries a timeout (default
60 s); expiry raises :class:`SimMPIError` in the offending rank and the
run reports it instead of hanging the test suite.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SimMPIError", "Request", "Communicator", "CartComm", "run_ranks"]

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 60.0


class SimMPIError(RuntimeError):
    """A communication error in the simulated MPI runtime."""


class _World:
    """Shared state of one simulated MPI world."""

    def __init__(self, size: int):
        self.size = size
        self.lock = threading.Condition()
        # mailbox per destination: deque of (source, tag, ndarray copy)
        self.mail: List[deque] = [deque() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.bcast_slots: Dict[int, Any] = {}
        self.reduce_slots: Dict[str, list] = {}
        self.failed = threading.Event()
        # traffic accounting (bytes by (src, dst))
        self.traffic: Dict[Tuple[int, int], int] = {}

    def post(self, source: int, dest: int, tag: int,
             data: np.ndarray) -> None:
        with self.lock:
            self.mail[dest].append((source, tag, data))
            key = (source, dest)
            self.traffic[key] = self.traffic.get(key, 0) + data.nbytes
            self.lock.notify_all()

    def take(self, dest: int, source: int, tag: int,
             timeout: float) -> Tuple[int, int, np.ndarray]:
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        with self.lock:
            waited = 0.0
            step = 0.05
            while True:
                box = self.mail[dest]
                for idx, (src, tg, data) in enumerate(box):
                    if (source in (ANY_SOURCE, src)
                            and tag in (ANY_TAG, tg)):
                        del box[idx]
                        return src, tg, data
                if self.failed.is_set():
                    raise SimMPIError(
                        f"rank {dest}: peer failed while waiting for a "
                        f"message from {source} tag {tag}"
                    )
                if waited >= deadline:
                    raise SimMPIError(
                        f"rank {dest}: timeout waiting for message from "
                        f"{source} tag {tag} (likely deadlock)"
                    )
                self.lock.wait(step)
                waited += step


class Request:
    """A nonblocking-operation handle (mpi4py-style)."""

    def __init__(self, fn: Optional[Callable[[float], Any]] = None,
                 done: bool = True, value: Any = None):
        self._fn = fn
        self._done = done
        self._value = value

    def Wait(self, timeout: float = _DEFAULT_TIMEOUT) -> Any:
        if not self._done:
            self._value = self._fn(timeout)
            self._done = True
        return self._value

    wait = Wait

    def Test(self) -> bool:
        if self._done:
            return True
        try:
            self._value = self._fn(0.0)
            self._done = True
        except SimMPIError:
            return False
        return True

    test = Test

    @staticmethod
    def Waitall(requests: Sequence["Request"],
                timeout: float = _DEFAULT_TIMEOUT) -> None:
        for req in requests:
            req.Wait(timeout)


class Communicator:
    """One rank's endpoint into the simulated world."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- rank info (mpi4py spelling) ------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point ----------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise SimMPIError(
                f"rank {self.rank}: invalid peer {peer} "
                f"(world size {self.size})"
            )

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffered send: the payload is copied at send time."""
        self._check_peer(dest)
        data = np.ascontiguousarray(buf).copy()
        self._world.post(self.rank, dest, tag, data)

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG,
             timeout: float = _DEFAULT_TIMEOUT) -> Tuple[int, int, int]:
        """Receive into ``buf``; returns (source, tag, count).

        As in MPI, the message may be *smaller* than the receive buffer
        (the prefix is filled and ``count`` reports the element count);
        a larger message is a truncation error.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        src, tg, data = self._world.take(self.rank, source, tag, timeout)
        flat = buf.reshape(-1)
        if data.size > flat.size:
            raise SimMPIError(
                f"rank {self.rank}: message truncation — message from "
                f"{src} tag {tg} has {data.size} elements, receive buffer "
                f"only {flat.size}"
            )
        flat[: data.size] = data.reshape(-1)
        return src, tg, data.size

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self.Send(buf, dest, tag)
        return Request(done=True)

    def Irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking receive completing at Wait()."""

        def complete(timeout: float):
            return self.Recv(buf, source, tag, timeout=timeout)

        return Request(fn=complete, done=False)

    def Sendrecv(self, sendbuf: np.ndarray, dest: int,
                 recvbuf: np.ndarray, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> None:
        """Combined send+receive (deadlock-free)."""
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag)

    # -- collectives -----------------------------------------------------------
    def Barrier(self, timeout: float = _DEFAULT_TIMEOUT) -> None:
        try:
            self._world.barrier.wait(timeout)
        except threading.BrokenBarrierError:
            raise SimMPIError(
                f"rank {self.rank}: barrier broken (peer failure/timeout)"
            ) from None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Generic-object broadcast."""
        world = self._world
        with world.lock:
            if self.rank == root:
                world.bcast_slots[root] = obj
                world.lock.notify_all()
            else:
                waited = 0.0
                while root not in world.bcast_slots:
                    world.lock.wait(0.05)
                    waited += 0.05
                    if waited > _DEFAULT_TIMEOUT:
                        raise SimMPIError("bcast timeout")
                obj = world.bcast_slots[root]
        self.Barrier()
        if self.rank == root:
            with world.lock:
                world.bcast_slots.pop(root, None)
        self.Barrier()
        return obj

    def allreduce(self, value, op: str = "sum"):
        """Scalar all-reduce: op in {sum, max, min}."""
        if op not in ("sum", "max", "min"):
            raise ValueError(f"unsupported allreduce op {op!r}")
        world = self._world
        key = f"reduce-{op}"
        with world.lock:
            slot = world.reduce_slots.setdefault(key, [None] * self.size)
            slot[self.rank] = value
        self.Barrier()
        with world.lock:
            vals = world.reduce_slots[key]
            fn = {"sum": sum, "max": max, "min": min}[op]
            result = fn(vals)
        self.Barrier()
        if self.rank == 0:
            with world.lock:
                world.reduce_slots.pop(key, None)
        self.Barrier()
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Generic-object gather to ``root``."""
        tag = 1 << 20
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[self.rank] = obj
            for _ in range(self.size - 1):
                src, _, data = self._world.take(
                    self.rank, ANY_SOURCE, tag, _DEFAULT_TIMEOUT
                )
                out[src] = data.item(0)
            return out
        # objects ride the numpy mailbox inside 1-element object arrays
        box = np.empty(1, dtype=object)
        box[0] = obj
        self._world.post(self.rank, root, tag, box)
        return None

    # -- topology -----------------------------------------------------------------
    def Create_cart(self, dims: Sequence[int],
                    periods: Optional[Sequence[bool]] = None) -> "CartComm":
        return CartComm(self._world, self.rank, tuple(dims), periods)

    # -- accounting ----------------------------------------------------------------
    def traffic_bytes(self) -> int:
        """Total bytes this world has moved so far."""
        with self._world.lock:
            return sum(self._world.traffic.values())


class CartComm(Communicator):
    """Cartesian communicator: row-major rank ↔ coordinates mapping."""

    def __init__(self, world: _World, rank: int, dims: Tuple[int, ...],
                 periods: Optional[Sequence[bool]] = None):
        super().__init__(world, rank)
        n = 1
        for d in dims:
            if d < 1:
                raise ValueError(f"invalid cart dims {dims}")
            n *= d
        if n != world.size:
            raise ValueError(
                f"cart dims {dims} require {n} ranks, world has {world.size}"
            )
        self.dims = dims
        self.periods = (
            tuple(bool(p) for p in periods)
            if periods is not None else (False,) * len(dims)
        )
        if len(self.periods) != len(dims):
            raise ValueError("periods length must match dims")

    def Get_coords(self, rank: int) -> Tuple[int, ...]:
        coords = []
        rem = rank
        for d in reversed(self.dims):
            coords.append(rem % d)
            rem //= d
        return tuple(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        rank = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            if not 0 <= c < d:
                raise ValueError(
                    f"coordinate {c} out of range for extent {d} "
                    "(non-periodic)"
                )
            rank = rank * d + c
        return rank

    def Shift(self, direction: int, disp: int = 1) -> Tuple[int, int]:
        """(source, dest) ranks for a shift; -1 marks 'no neighbour'."""
        coords = list(self.Get_coords(self.rank))

        def neighbour(delta: int) -> int:
            c = list(coords)
            c[direction] += delta
            if self.periods[direction]:
                c[direction] %= self.dims[direction]
            elif not 0 <= c[direction] < self.dims[direction]:
                return -1
            return self.Get_cart_rank(c)

        return neighbour(-disp), neighbour(+disp)


def run_ranks(nprocs: int, main: Callable[[Communicator], Any],
              cart_dims: Optional[Sequence[int]] = None,
              periods: Optional[Sequence[bool]] = None,
              timeout: float = 120.0) -> List[Any]:
    """Run ``main(comm)`` on ``nprocs`` simulated ranks; return results.

    This is the ``mpiexec -n`` of the simulated runtime.  If any rank
    raises, the first exception is re-raised after all threads stop.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    world = _World(nprocs)
    results: List[Any] = [None] * nprocs
    errors: List[Tuple[int, BaseException]] = []

    def entry(rank: int) -> None:
        try:
            comm: Communicator = Communicator(world, rank)
            if cart_dims is not None:
                comm = CartComm(world, rank, tuple(cart_dims), periods)
            results[rank] = main(comm)
        except BaseException as exc:  # noqa: BLE001 - report to caller
            errors.append((rank, exc))
            world.failed.set()
            world.barrier.abort()

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nprocs)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout)
        if th.is_alive():
            world.failed.set()
            world.barrier.abort()
            raise SimMPIError(
                f"{th.name} did not finish within {timeout}s (deadlock?)"
            )
    if errors:
        # prefer the root cause: secondary SimMPIErrors (broken barriers,
        # peer-failure aborts) are consequences, not causes
        primary = [e for e in errors if not isinstance(e[1], SimMPIError)]
        rank, exc = sorted(primary or errors, key=lambda e: e[0])[0]
        raise SimMPIError(f"rank {rank} failed: {exc!r}") from exc
    return results
