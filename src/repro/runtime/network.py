"""Analytical network model for at-scale timing (Fig. 10).

The functional halo exchange runs on :mod:`~repro.runtime.simmpi`; the
*timing* of large-scale runs (up to 1024 CGs / 66,560 cores) comes from
this model instead:

- per-process time: one latency per dimension phase (messages within a
  phase are posted asynchronously and overlap) plus the process's halo
  volume over its link bandwidth;
- congestion: the run's total in-flight volume over the machine's
  bisection capacity — the term that bends the 2D strong-scaling curves
  on the prototype Tianhe-3 (Sec. 5.3: "halo regions of 2D stencils are
  exchanged more frequently, which leads to network congestion").

The per-step communication time is the max of the two: a network is
either endpoint-limited or fabric-limited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..ir.analysis import halo_traffic_bytes, stencil_flops_per_point
from ..ir.stencil import Stencil
from ..machine.spec import MachineSpec, NetworkSpec

__all__ = ["NetworkModel", "ScalePoint", "scaling_run"]


class NetworkModel:
    """Halo-exchange timing over one interconnect."""

    def __init__(self, spec: NetworkSpec):
        self.spec = spec

    def _endpoint_fabric_s(self, nprocs: int, bytes_per_proc: int,
                           phases: int) -> Tuple[float, float]:
        """(endpoint_s, fabric_s) — the two candidate limits.

        The single source of both timing formulas, shared by
        :meth:`exchange_time_s` and :meth:`is_congested` so the model
        cannot drift between them: endpoint = per-phase latency plus
        the process's volume over its link; fabric = the run's total
        in-flight volume over the bisection capacity.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if bytes_per_proc < 0:
            raise ValueError("negative halo volume")
        endpoint = (
            phases * self.spec.latency_us * 1e-6
            + bytes_per_proc / (self.spec.link_bw_GBs * 1e9)
        )
        fabric = (
            nprocs * bytes_per_proc / (self.spec.bisection_GBs * 1e9)
        )
        return endpoint, fabric

    def exchange_time_s(self, nprocs: int, bytes_per_proc: int,
                        phases: int) -> float:
        """Per-timestep halo-exchange time (seconds).

        ``bytes_per_proc`` is one process's total send volume per step,
        ``phases`` the number of dimension phases (latency is paid per
        phase, not per message — messages in a phase overlap).
        """
        endpoint, fabric = self._endpoint_fabric_s(
            nprocs, bytes_per_proc, phases
        )
        return max(endpoint, fabric)

    def sync_time_s(self, nprocs: int, phases: int) -> float:
        """Non-overlappable per-exchange synchronisation cost.

        Zero except for 2-D process grids on platforms with a measured
        ``sync_2d_us_per_32p`` (see the NetworkSpec docs): wavefront
        synchronisation cannot be hidden behind computation.
        """
        if phases != 2:
            return 0.0
        return self.spec.sync_2d_us_per_32p * 1e-6 * nprocs / 32.0

    def is_congested(self, nprocs: int, bytes_per_proc: int,
                     phases: int) -> bool:
        """True when the bisection term dominates (fabric-limited)."""
        endpoint, fabric = self._endpoint_fabric_s(
            nprocs, bytes_per_proc, phases
        )
        return fabric > endpoint


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scalability curve (Fig. 10 sample)."""

    nprocs: int
    cores: int
    sub_shape: Tuple[int, ...]
    compute_s: float
    comm_s: float
    step_s: float
    gflops: float
    ideal_gflops: float

    @property
    def efficiency(self) -> float:
        return self.gflops / self.ideal_gflops if self.ideal_gflops else 0.0


def _node_step_time(stencil: Stencil, sub_shape: Sequence[int],
                    machine: MachineSpec) -> Tuple[float, float]:
    """(compute_s, flops) for one node's sub-domain per timestep.

    Memory-bound stream model: footprint traffic of every kernel
    application over the node's derated bandwidth, plus the arithmetic
    over the derated peak — consistent with the single-node simulators.
    """
    n = 1
    for s in sub_shape:
        n *= s
    elem = stencil.output.dtype.nbytes
    planes = len(stencil.applications)
    # streamed traffic: each history plane read once + the output written
    traffic = n * elem * (planes + 2.0)
    bw = machine.mem_bw_GBs * machine.stream_efficiency * 1e9
    flops_pp = stencil_flops_per_point(stencil)
    flops = float(n * flops_pp)
    # cache-less CPEs run the scalar inner loop; cache machines vectorise
    flop_eff = (
        machine.scalar_flop_efficiency if machine.cacheless else 0.9
    )
    peak = machine.peak_gflops * flop_eff * 1e9
    return traffic / bw + flops / peak, flops


def scaling_run(stencil: Stencil, sub_shape: Sequence[int],
                grid: Sequence[int], machine: MachineSpec,
                network: NetworkSpec,
                per_node_ideal_gflops: float = None) -> ScalePoint:
    """One configuration of the Fig. 10 experiments.

    ``sub_shape`` is the per-process grid (Table 7 column), ``grid`` the
    MPI grid; compute and communication are overlapped as generated by
    MSC ("the computation codes are interleaved with the communication
    codes"), leaving ``max(compute, comm)`` plus a 10% serial fraction
    of the smaller term.
    """
    nprocs = 1
    for g in grid:
        nprocs *= g
    compute_s, flops = _node_step_time(stencil, sub_shape, machine)
    halo_bytes = halo_traffic_bytes(stencil, tuple(sub_shape))
    model = NetworkModel(network)
    comm_s = model.exchange_time_s(nprocs, halo_bytes, len(sub_shape))
    sync_s = model.sync_time_s(nprocs, len(sub_shape))
    overlap_small = min(compute_s, comm_s)
    step = max(compute_s, comm_s) + 0.1 * overlap_small + sync_s
    gflops = nprocs * flops / step / 1e9
    if per_node_ideal_gflops is None:
        ideal_node = flops / compute_s / 1e9
    else:
        ideal_node = per_node_ideal_gflops
    return ScalePoint(
        nprocs=nprocs,
        cores=nprocs * machine.cores_per_node,
        sub_shape=tuple(sub_shape),
        compute_s=compute_s,
        comm_s=comm_s,
        step_s=step,
        gflops=gflops,
        ideal_gflops=nprocs * ideal_node,
    )
