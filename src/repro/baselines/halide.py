"""Halide baseline on the CPU server (Fig. 12).

The paper compares MSC against Halide v12 under JIT and AOT settings:

- *Halide-JIT* pays a per-run JIT compilation overhead ("the poor
  performance of Halide-JIT can be attributed to the large overhead of
  JIT compilation"); average speedup of Halide-AOT over JIT is 2.92×
  and of MSC over JIT 3.33×.
- *Halide-AOT* beats MSC on small stencils but loses on large ones:
  "Halide-AOT generates a large number of subscript expressions for
  data indexing, whereas MSC can directly index the data due to its
  design of tensor IR ... Halide-AOT requires more computation for
  evaluating subscript expressions as the stencil order increases."

Cost model: MSC's CPU time plus (a) a small constant *advantage* from
Halide's mature vectorizer, (b) an indexing-arithmetic term that adds
one fused subscript evaluation per stencil point per output point, and
(c) for JIT, a fixed per-run lowering/compile cost scaling mildly with
expression size.
"""

from __future__ import annotations

from ..ir.stencil import Stencil
from ..machine.matrix_sim import CacheMachineSimulator
from ..machine.report import TimingReport
from ..machine.spec import CPU_E5_2680V4, MachineSpec
from ..schedule.schedule import Schedule

__all__ = ["simulate_halide_aot", "simulate_halide_jit"]

#: Halide's vectorizer squeezes a few % more out of the memory streams
HALIDE_VECTOR_ADVANTAGE = 0.90
#: extra arithmetic ops per stencil point for subscript evaluation
INDEXING_OPS_PER_POINT = 3.5
#: JIT pipeline lowering+codegen cost per run (s), plus per-point term
JIT_BASE_OVERHEAD_S = 2.0
JIT_OVERHEAD_PER_POINT_S = 0.03


def simulate_halide_aot(stencil: Stencil, schedule: Schedule,
                        timesteps: int = 1,
                        machine: MachineSpec = CPU_E5_2680V4) -> TimingReport:
    """Halide ahead-of-time compiled, OpenMP threads."""
    base = CacheMachineSimulator(machine).run(stencil, schedule, timesteps)
    out = stencil.output
    n = out.npoints
    npoints = max(a.kernel.npoints for a in stencil.applications)
    napply = len(stencil.applications)
    precision = base.precision

    # subscript-expression evaluation rides the compute pipes
    peak = (
        machine.cores_per_node * machine.core_gflops() * 0.9
        * (2.0 if precision == "fp32" else 1.0)
    ) * 1e9
    indexing_s = n * napply * npoints * INDEXING_OPS_PER_POINT / peak

    return TimingReport(
        machine=machine.name,
        stencil=f"{out.name}-halide-aot",
        precision=precision,
        timesteps=timesteps,
        compute_s=base.compute_s + indexing_s,
        memory_s=base.memory_s * HALIDE_VECTOR_ADVANTAGE,
        flops_per_step=base.flops_per_step,
        details={"indexing_s": indexing_s},
    )


def simulate_halide_jit(stencil: Stencil, schedule: Schedule,
                        timesteps: int = 1,
                        machine: MachineSpec = CPU_E5_2680V4) -> TimingReport:
    """Halide just-in-time: AOT execution plus per-run compile cost."""
    report = simulate_halide_aot(stencil, schedule, timesteps, machine)
    npoints = max(a.kernel.npoints for a in stencil.applications)
    report.stencil = report.stencil.replace("-aot", "-jit")
    report.overhead_s = (
        JIT_BASE_OVERHEAD_S + JIT_OVERHEAD_PER_POINT_S * npoints
    )
    return report
