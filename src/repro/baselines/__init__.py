"""Baseline system models for the Sec. 5 comparisons.

Each baseline implements the execution strategy and the documented
performance characteristics of the compared system: OpenACC on Sunway
(Fig. 7), hand-tuned OpenMP on Matrix (Fig. 8), Halide JIT/AOT
(Fig. 12), Patus (Fig. 13) and Physis (Fig. 14), plus the Table 6
lines-of-code accounting.
"""

from .openacc import render_openacc_source, simulate_openacc_sunway
from .openmp import simulate_openmp_matrix
from .halide import simulate_halide_aot, simulate_halide_jit
from .patus import simulate_patus
from .physis import (
    INTRA_NODE_NETWORK,
    simulate_msc_hybrid,
    simulate_physis,
)
from .loc import loc_comparison, loc_of, render_msc_source

__all__ = [
    "render_openacc_source", "simulate_openacc_sunway",
    "simulate_openmp_matrix",
    "simulate_halide_aot", "simulate_halide_jit",
    "simulate_patus",
    "INTRA_NODE_NETWORK", "simulate_msc_hybrid", "simulate_physis",
    "loc_comparison", "loc_of", "render_msc_source",
]
