"""OpenACC baseline on Sunway (Fig. 7).

The paper's baseline uses the Sunway OpenACC compiler's directives
(``acc copyin/copyout``, ``acc tile``, ``acc parallel``) — "similar
optimization techniques as MSC, [but] they lack the fine-grained
managements that adapt the stencil patterns to the Sunway architecture,
especially on high-order stencils".

Cost model: the OpenACC runtime stages data with generic copyin/copyout
rather than per-tile halo-aware DMA, so

- memory traffic moves at the *discrete global-load* efficiency of the
  CG (``gld_efficiency`` of the spec, a few percent of DMA bandwidth)
  rather than streaming DMA efficiency;
- the generic staging cannot exploit the stencil's neighbourhood reuse
  for wide stencils: a reuse-loss factor grows with the point count
  (this is the "especially on high-order stencils" effect);
- fp32 improves the discrete-access efficiency slightly more than 2×
  (two 4-byte elements per transaction), which is why the paper's fp32
  speedups are *smaller* than fp64 (20.7× vs 24.4×).

It also emits the OpenACC-style C source (plain loops + directives) for
the Table 6 LoC comparison.
"""

from __future__ import annotations

from typing import List

from ..ir.stencil import Stencil
from ..machine.report import TimingReport
from ..machine.spec import SUNWAY_CG, MachineSpec
from ..machine.sunway_sim import SunwaySimulator
from ..schedule.schedule import Schedule

__all__ = ["simulate_openacc_sunway", "render_openacc_source"]

#: reuse lost per extra stencil point beyond a 7-point star (generic
#: ``acc tile`` staging keeps re-fetching wide neighbourhoods; this is
#: the "especially on high-order stencils" effect of Sec. 5.2.1)
REUSE_LOSS_PER_POINT = 0.004
#: fp32 discrete accesses pack two elements per transaction: efficiency
#: boost relative to fp64 discrete accesses (this is why the paper's
#: fp32 speedups, 20.7×, are smaller than the fp64 ones, 24.4×)
FP32_GLD_BOOST = 1.18


def simulate_openacc_sunway(stencil: Stencil, schedule: Schedule,
                            timesteps: int = 1,
                            machine: MachineSpec = SUNWAY_CG) -> TimingReport:
    """Timing of the OpenACC-directive version on one CG.

    The OpenACC code adopts the same tiling (``acc tile``) and thread
    mapping (``acc parallel``) as MSC, so its traffic *structure*
    matches the MSC schedule; the difference is the transport: generic
    copyin/copyout staging issues discrete global loads/stores at
    ``gld_efficiency`` of the memory bandwidth instead of MSC's
    streaming DMA at ``stream_efficiency``, plus a reuse-loss factor
    that grows with the stencil's point count.
    """
    msc = SunwaySimulator(machine).run(stencil, schedule, timesteps)
    elem = stencil.output.dtype.nbytes
    precision = "fp32" if elem == 4 else "fp64"
    npoints = max(app.kernel.npoints for app in stencil.applications)

    reuse_loss = 1.0 + REUSE_LOSS_PER_POINT * max(0, npoints - 7)
    gld_eff = machine.gld_efficiency
    if precision == "fp32":
        gld_eff *= FP32_GLD_BOOST
    transport_ratio = machine.stream_efficiency / gld_eff

    return TimingReport(
        machine=machine.name,
        stencil=f"{stencil.output.name}-openacc",
        precision=precision,
        timesteps=timesteps,
        compute_s=msc.compute_s,
        memory_s=msc.memory_s * transport_ratio * reuse_loss,
        flops_per_step=msc.flops_per_step,
        details={"reuse_loss": reuse_loss, "gld_eff": gld_eff},
    )


def render_openacc_source(stencil: Stencil) -> str:
    """The hand-written OpenACC C a domain expert would produce.

    Plain nested loops with ``#pragma acc`` directives (data staging,
    tiling, parallelisation) — the Table 6 'OpenACC' LoC column counts
    these lines.
    """
    out = stencil.output
    terms = stencil.combination_terms()
    kern = stencil.kernels[0]
    dims = [lv.name for lv in kern.loop_vars]
    lines: List[str] = [
        f"/* hand-written OpenACC implementation of {kern.name} */",
        "#include <stdio.h>",
        "#include <stdlib.h>",
        f"typedef {out.dtype.c_name} real;",
    ]
    for nm, v in zip(["NZ", "NY", "NX"][-out.ndim:], out.shape):
        lines.append(f"#define {nm} {v}")
    for nm, v in zip(["HZ", "HY", "HX"][-out.ndim:], out.halo):
        lines.append(f"#define {nm} {v}")
    lines.append(f"#define TWIN {out.time_window}")
    lines += [
        "static real *win[TWIN];",
        "static real *acc;",
        "",
        "void sweep(long t_read, real scale) {",
        "  const real *in = win[((t_read % TWIN) + TWIN) % TWIN];",
        "#pragma acc data copyin(in) copyout(acc)",
        "#pragma acc parallel loop tile(*)",
    ]
    names = ["NZ", "NY", "NX"][-out.ndim:]
    for d, v in enumerate(dims):
        lines.append(
            "  " * (d + 1)
            + f"for (long {v} = 0; {v} < {names[d]}; {v}++)"
        )
    # one accumulation statement per stencil point (hand-expanded)
    accs = stencil.kernels[0].accesses
    indent = "  " * (out.ndim + 1)
    lines.append(indent + "{ real v = 0;")
    acc_terms = []
    for idx, a in enumerate(accs):
        subs = ",".join(
            f"{ix.var.name}{ix.offset:+d}" if ix.offset else ix.var.name
            for ix in a.indices
        )
        acc_terms.append(f"c{idx}*IN({subs})")
    for pos in range(0, len(acc_terms), 4):
        lines.append(
            indent + "  v += " + " + ".join(acc_terms[pos:pos + 4]) + ";"
        )
    centre = ", ".join(dims)
    lines.append(indent + f"  ACC({centre}) += scale * v; }}")
    lines += [
        "}",
        "",
        "int main(int argc, char **argv) {",
        "  if (argc != 4) { usage(argv[0]); return 2; }",
        "  long steps = strtol(argv[2], NULL, 10);",
        "  for (int w = 0; w < TWIN; w++)",
        "    win[w] = (real *)malloc(PLANE_BYTES);",
        "  acc = (real *)malloc(VALID_BYTES);",
        "  if (!acc) { perror(\"alloc\"); return 1; }",
        "  load(argv[1]);",
        "  double t0 = wtime();",
        f"  for (long t = {stencil.required_time_window - 1}; "
        "t < steps; t++) {",
    ]
    for scale, app in terms:
        lines.append(
            f"    sweep(t - {-app.time_offset}, (real){scale!r});"
        )
    lines += [
        "    commit(t);",
        "  }",
        "  double elapsed = wtime() - t0;",
        '  printf("elapsed %.6f s (%.2f GFlops)\\n", elapsed,'
        " gflops(steps, elapsed));",
        "  store(argv[3]);",
        "  for (int w = 0; w < TWIN; w++) free(win[w]);",
        "  free(acc);",
        "  return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"
