"""Lines-of-code accounting for Table 6.

Three columns per benchmark:

- **MSC** — the DSL program a user writes (rendered in the Listing-1
  style and counted);
- **OpenACC** — the hand-written directive-based C for Sunway
  (rendered by :mod:`~repro.baselines.openacc`);
- **OpenMP** — the fully hand-optimized C for Matrix; we count the
  *generated* CPU program, which is exactly the code a careful human
  would have to write (tiled loops, window rotation, halo fill, I/O).

All counts skip blank lines, matching common LoC practice.
"""

from __future__ import annotations

from typing import Dict, List

from ..backend.c_codegen import CCodeGenerator
from ..frontend.stencils import BenchmarkDef
from .openacc import render_openacc_source

__all__ = ["render_msc_source", "loc_of", "loc_comparison"]


def render_msc_source(bench: BenchmarkDef) -> str:
    """The MSC DSL program for a benchmark, Listing-1 style."""
    prog, handle = bench.build(
        grid=tuple(4 * (2 * bench.radius + 1) for _ in range(bench.ndim))
    )
    kern = handle.kernel
    out = prog.ir.output
    dims = [lv.name for lv in kern.loop_vars]
    lines: List[str] = [
        '#include "msc/msc.h"',
        "using namespace msc;",
        "int main(int argc, char **argv) {",
        f"const int N = {bench.default_grid[0]};",
        f"const int halo_width = {bench.radius};",
        "const int time_window_size = 2;",
        "const int tile_sizes[] = TILE_CONFIG;",
    ]
    lines += [f"DefVar({v}, i32);" for v in dims]
    shape_args = ", ".join(str(s) for s in bench.default_grid)
    lines.append(
        f"DefTensor{bench.ndim}D_TimeWin(B, time_window_size, halo_width, "
        f"f64, {shape_args});"
    )
    # kernel definition: up to four coefficient*access terms per line
    terms = []
    for idx, acc in enumerate(kern.accesses):
        subs = ",".join(
            f"{ix.var.name}{ix.offset:+d}" if ix.offset else ix.var.name
            for ix in acc.indices
        )
        terms.append(f"c{idx}*B[{subs}]")
    head = f"Kernel S_{bench.name}(({','.join(dims)}), "
    per_line = 4
    chunks = [
        " + ".join(terms[i:i + per_line])
        for i in range(0, len(terms), per_line)
    ]
    lines.append(head + chunks[0] + (" +" if len(chunks) > 1 else ""))
    for c, chunk in enumerate(chunks[1:]):
        tail = " +" if c < len(chunks) - 2 else ", schedule);"
        lines.append("    " + chunk + tail)
    if len(chunks) == 1:
        lines[-1] += ", schedule);"
    # schedule primitives
    tile_names = {2: '"yo","yi","xo","xi"', 3: '"zo","zi","yo","yi","xo","xi"'}
    lines += [
        f"S_{bench.name}.tile(tile_sizes, {tile_names[bench.ndim]});",
        f"S_{bench.name}.reorder(outer_then_inner);",
        f'S_{bench.name}.cache_read(B, buffer_read, "global");',
        f'S_{bench.name}.cache_write(buffer_write, "global");',
        f"S_{bench.name}.compute_at(buffer_read, zo);",
        f"S_{bench.name}.compute_at(buffer_write, zo);",
        f"S_{bench.name}.parallel(xo, 64);",
        "auto t = Stencil::t;",
        "Result Res((" + ",".join(dims) + "), B[" + ",".join(dims) + "]);",
        f"Stencil st(({','.join(dims)}), "
        f"Res[t] << 0.6*S_{bench.name}[t-1] + 0.4*S_{bench.name}[t-2]);",
        "DefShapeMPI%dD(shape_mpi%s);" % (
            bench.ndim, ", 4" * bench.ndim
        ),
        'st.input(shape_mpi, B, "/data/rand.data");',
        "st.run(1, 10);",
        f'st.compile_to_source_code("{bench.name}");',
        "return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def loc_of(text: str) -> int:
    """Non-blank line count."""
    return sum(1 for line in text.splitlines() if line.strip())


def loc_comparison(bench: BenchmarkDef) -> Dict[str, int]:
    """Table 6 row: {'msc': n, 'openacc': n, 'openmp': n}."""
    small = tuple(4 * (2 * bench.radius + 1) for _ in range(bench.ndim))
    prog, handle = bench.build(grid=small)
    msc = loc_of(render_msc_source(bench))
    openacc = loc_of(render_openacc_source(prog.ir))
    gen = CCodeGenerator(prog.ir, prog.schedules(), boundary="zero")
    openmp = gen.generate(bench.name).loc(wrap=80)
    return {"msc": msc, "openacc": openacc, "openmp": openmp}
