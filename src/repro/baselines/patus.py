"""Patus baseline on the CPU server (Fig. 13).

"Patus applies aggressive SIMD vectorization with SSE intrinsics, which
leads to more unaligned memory accesses and thus exacerbates the
memory-bound problem.  In addition, the 3D star stencils [of high
order] suffer more from discrete memory accesses."  MSC's average
speedup over Patus is 5.94×.

Cost model: the MSC CPU memory term divided by an unaligned-SSE
bandwidth efficiency, with an additional discrete-access penalty that
grows with the number of distinct row-streams a 3D star of radius r
touches (each misaligned 128-bit load splits across cache lines).
"""

from __future__ import annotations

from ..ir.analysis import classify_shape
from ..ir.stencil import Stencil
from ..machine.matrix_sim import CacheMachineSimulator
from ..machine.report import TimingReport
from ..machine.spec import CPU_E5_2680V4, MachineSpec
from ..schedule.schedule import Schedule

__all__ = ["simulate_patus"]

#: bandwidth efficiency of unaligned SSE streams vs aligned AVX2
UNALIGNED_SSE_EFFICIENCY = 0.195
#: extra penalty per distinct non-contiguous ray of a 3D star stencil
DISCRETE_RAY_PENALTY = 0.028


def simulate_patus(stencil: Stencil, schedule: Schedule,
                   timesteps: int = 1,
                   machine: MachineSpec = CPU_E5_2680V4) -> TimingReport:
    """Timing of the Patus-generated kernel (OpenMP threads)."""
    base = CacheMachineSimulator(machine).run(stencil, schedule, timesteps)
    out = stencil.output
    kern = stencil.kernels[0]
    npoints = max(a.kernel.npoints for a in stencil.applications)

    penalty = 1.0 / UNALIGNED_SSE_EFFICIENCY
    if out.ndim == 3 and classify_shape(kern) == "star":
        # rays = points not on the unit-stride axis
        radius_i = kern.radius[-1]
        rays = npoints - 2 * radius_i - 1
        penalty *= 1.0 + DISCRETE_RAY_PENALTY * rays

    # SSE (128-bit) halves the vector width of AVX2: compute term doubles
    return TimingReport(
        machine=machine.name,
        stencil=f"{out.name}-patus",
        precision=base.precision,
        timesteps=timesteps,
        compute_s=base.compute_s * 2.0,
        memory_s=base.memory_s * penalty,
        flops_per_step=base.flops_per_step,
        details={"unaligned_penalty": penalty},
    )
