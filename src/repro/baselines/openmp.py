"""Manually-optimized OpenMP baseline on Matrix (Fig. 8).

"The performance of MSC generated stencil codes is close to the
manually optimized OpenMP codes ... MSC achieves 1.05× (fp64) and
1.03× (fp32) performance of the manually optimized codes on average."

The baseline uses the same cache-machine model as MSC's Matrix backend
— the Matrix processor is a homogeneous ARM many-core that is "easier
to optimize manually" — but with a slightly lower streaming efficiency:
hand-chosen tile sizes are near- but not per-pattern-optimal, costing a
few percent of bandwidth.  fp32 narrows the gap (the baseline's SIMD
pragmas are as good as generated code when lanes double).
"""

from __future__ import annotations

from ..ir.stencil import Stencil
from ..machine.matrix_sim import CacheMachineSimulator
from ..machine.report import TimingReport
from ..machine.spec import MATRIX_SN, MachineSpec
from ..schedule.schedule import Schedule

__all__ = ["simulate_openmp_matrix"]

#: streaming-efficiency penalty of hand-tuned (vs generated) tiling
MANUAL_STREAM_PENALTY_FP64 = 0.953
MANUAL_STREAM_PENALTY_FP32 = 0.971


def simulate_openmp_matrix(stencil: Stencil, schedule: Schedule,
                           timesteps: int = 1,
                           machine: MachineSpec = MATRIX_SN) -> TimingReport:
    """Timing of the hand-written OpenMP version on one supernode."""
    elem = stencil.output.dtype.nbytes
    penalty = (
        MANUAL_STREAM_PENALTY_FP32 if elem == 4
        else MANUAL_STREAM_PENALTY_FP64
    )
    from dataclasses import replace

    derated = replace(
        machine,
        programming_model="openmp-manual",
        stream_efficiency=machine.stream_efficiency * penalty,
    )
    report = CacheMachineSimulator(derated).run(stencil, schedule, timesteps)
    report.stencil = f"{stencil.output.name}-openmp"
    return report
