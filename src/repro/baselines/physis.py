"""Physis baseline on the CPU server (Fig. 14, Table 8).

"In Physis, the halo exchange relies on the RPC runtime that
coordinates the communication among all processes with a master
process, which soon becomes the bottleneck as the amount of halo
exchange increases."  MSC's average speedup is 9.88×, largest on
high-order stencils.

Cost model: both systems compute at the same node rate (Physis's
kernels are fine); the difference is communication.  MSC's async
exchange costs one latency per phase plus the per-process halo volume
at link bandwidth; Physis's master-relayed exchange serialises *every*
message through rank 0: the master must receive and re-send the whole
run's halo volume each step, so its cost is
``2 × nprocs × halo_bytes / link_bw + 2 × nprocs × messages × latency``.

Physis also runs MPI-everywhere (no OpenMP hybrid — "Physis does not
support hybrid parallelism"), so its process count is the full core
count and its per-process sub-domains are the smallest, maximising the
relayed volume.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..ir.analysis import halo_traffic_bytes, stencil_flops_per_point
from ..ir.stencil import Stencil
from ..machine.report import TimingReport
from ..machine.spec import CPU_E5_2680V4, MachineSpec, NetworkSpec

__all__ = ["simulate_physis", "simulate_msc_hybrid", "INTRA_NODE_NETWORK"]

#: intra-node "network" (shared-memory MPI transport on the CPU server)
INTRA_NODE_NETWORK = NetworkSpec(
    name="intra-node",
    latency_us=0.8,
    link_bw_GBs=5.0,
    bisection_GBs=60.0,
    topology="shared-memory",
)

#: effective throughput of Physis's RPC-coordinated relay: every strip
#: is marshalled, sent to the master process, copied, and re-sent —
#: orders of magnitude below the raw transport (this serialisation is
#: the Sec. 5.5 bottleneck)
RPC_RELAY_BW_GBs = 0.16


def _sub_shape(global_shape: Sequence[int],
               grid: Sequence[int]) -> Tuple[int, ...]:
    return tuple(-(-s // g) for s, g in zip(global_shape, grid))


def _node_compute_s(stencil: Stencil, global_shape: Sequence[int],
                    machine: MachineSpec) -> Tuple[float, float]:
    n = 1
    for s in global_shape:
        n *= s
    elem = stencil.output.dtype.nbytes
    planes = len(stencil.applications)
    traffic = n * elem * (planes + 2.0)
    bw = machine.mem_bw_GBs * machine.stream_efficiency * 1e9
    flops = float(n * stencil_flops_per_point(stencil))
    peak = machine.peak_gflops * 0.9 * 1e9
    return traffic / bw + flops / peak, flops


def simulate_physis(stencil: Stencil, global_shape: Sequence[int],
                    grid: Sequence[int], timesteps: int = 1,
                    machine: MachineSpec = CPU_E5_2680V4,
                    network: NetworkSpec = INTRA_NODE_NETWORK) -> TimingReport:
    """Physis: MPI-everywhere with master-coordinated halo exchange."""
    nprocs = 1
    for g in grid:
        nprocs *= g
    compute_s, flops = _node_compute_s(stencil, global_shape, machine)
    sub = _sub_shape(global_shape, grid)
    halo_bytes = halo_traffic_bytes(stencil, sub)
    messages = 2 * len(sub)
    # every byte crosses the master twice (in and out), serialised at
    # the RPC runtime's marshalling throughput
    relay_s = (
        2.0 * nprocs * halo_bytes / (RPC_RELAY_BW_GBs * 1e9)
        + 2.0 * nprocs * messages * network.latency_us * 1e-6
    )
    return TimingReport(
        machine=machine.name,
        stencil=f"{stencil.output.name}-physis",
        precision="fp32" if stencil.output.dtype.nbytes == 4 else "fp64",
        timesteps=timesteps,
        compute_s=compute_s,
        memory_s=relay_s,
        flops_per_step=flops,
        details={
            "halo_bytes_per_proc": float(halo_bytes),
            "nprocs": float(nprocs),
        },
    )


def simulate_msc_hybrid(stencil: Stencil, global_shape: Sequence[int],
                        grid: Sequence[int], omp_threads: int,
                        timesteps: int = 1,
                        machine: MachineSpec = CPU_E5_2680V4,
                        network: NetworkSpec = INTRA_NODE_NETWORK) -> TimingReport:
    """MSC with MPI+OpenMP hybrid parallelism (Table 8 configs)."""
    nprocs = 1
    for g in grid:
        nprocs *= g
    if nprocs * omp_threads > machine.cores_per_node:
        raise ValueError(
            f"{nprocs} ranks × {omp_threads} threads exceed "
            f"{machine.cores_per_node} cores"
        )
    compute_s, flops = _node_compute_s(stencil, global_shape, machine)
    sub = _sub_shape(global_shape, grid)
    halo_bytes = halo_traffic_bytes(stencil, sub)
    phases = len(sub)
    async_s = (
        phases * network.latency_us * 1e-6
        + halo_bytes / (network.link_bw_GBs * 1e9)
    )
    congestion = nprocs * halo_bytes / (network.bisection_GBs * 1e9)
    comm_s = max(async_s, congestion)
    return TimingReport(
        machine=machine.name,
        stencil=f"{stencil.output.name}-msc-hybrid",
        precision="fp32" if stencil.output.dtype.nbytes == 4 else "fp64",
        timesteps=timesteps,
        compute_s=compute_s,
        memory_s=comm_s,
        flops_per_step=flops,
        details={
            "halo_bytes_per_proc": float(halo_bytes),
            "nprocs": float(nprocs),
        },
    )
