"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``compile FILE.msc --target {cpu,matrix,sunway} -o DIR`` — parse a
  textual MSC program and write the AOT C bundle + Makefile;
- ``check SOURCE --machine {sunway,matrix,cpu}`` — static
  schedule-legality analysis of a .msc file or Table-4 benchmark;
  exits non-zero on error-severity diagnostics (``--list-codes``
  catalogues them);
- ``run FILE.msc --steps N`` — parse and execute (distributed when the
  program declares an MPI shape), printing a result checksum;
- ``simulate BENCH --machine {sunway,matrix,cpu}`` — timing report for
  a Table-4 benchmark under its Table-5 schedule;
- ``tune BENCH --nprocs N`` — run the auto-tuner;
- ``bench [WORKLOAD ...]`` — statistical performance benchmark:
  warmup + N repeats per workload, phase attribution and roofline
  placement, written as a versioned ``BENCH_<name>.json``;
  ``--compare BASELINE.json`` gates on regressions (exit 1);
- ``report EXPERIMENT`` — regenerate one table/figure of the paper;
- ``trace FILE`` — summarize a saved execution trace (``--by-rank`` /
  ``--distributed`` add the per-rank and flow-edge views);
- ``monitor SOURCE`` — refreshing ASCII dashboard over a live run:
  SOURCE is a ``--serve-metrics`` scrape URL or an ``--event-log``
  JSONL file (``--once`` renders a single frame and exits);
- ``critpath FILE`` — communication critical path and load-imbalance
  report of a saved distributed trace; exits non-zero on a malformed
  span DAG (orphan inbound flow edges, dangling parents);
- ``diff BASE CURRENT`` — align two runs (ledger ids, ``BENCH_*.json``
  documents or trace files) by the phase taxonomy, print a waterfall
  attributing the delta plus config drift; exits 1 on a gated
  regression;
- ``history WORKLOAD [--metric M] [--json]`` — per-metric trend over
  the run ledger with a deterministic change-point detector whose
  verdicts are annotated back into the ledger;
- ``list`` — list the Table-4 benchmarks, report names, trace
  exporters and instrumented subsystems.

``run``, ``simulate``, ``tune``, ``verify``, ``check`` and ``compile``
accept ``--trace FILE [--trace-format {json,chrome,summary}]`` to
record an execution trace through the :mod:`repro.obs` layer;
``chrome`` files load in ``chrome://tracing`` / Perfetto.

``compile``, ``run`` and ``simulate`` gate on the static legality
analyzer (:mod:`repro.analysis`) — error diagnostics abort, warnings
are logged to stderr; ``--no-check`` skips the gate.

``simulate`` additionally accepts ``--inject-faults SPEC
[--fault-seed N]`` to run the distributed-exchange stage over a faulty
simulated fabric (see ``docs/RESILIENCE.md``).

Live telemetry (``run``/``simulate``/``tune``/``bench``): the span
flight recorder is on by default (``REPRO_FLIGHT=0`` opts out,
``REPRO_FLIGHT_CAPACITY`` resizes the ring); ``--serve-metrics PORT``
exposes OpenMetrics + flight state on ``127.0.0.1:PORT`` while the
command runs (``--serve-linger`` keeps it up after); ``--event-log
FILE`` (or ``REPRO_EVENT_LOG``) appends the structured JSONL event
narration.  ``repro monitor`` tails either surface.

Every ``run``/``simulate``/``tune``/``bench``/``verify`` invocation
also appends a record — config + environment fingerprints, phase
self-times, gated metrics, outcome — to the on-disk run ledger
(``~/.local/state/repro/ledger.db``; ``REPRO_LEDGER_DIR`` overrides
the directory, ``REPRO_LEDGER=0`` opts out).  ``repro diff`` and
``repro history`` query it; see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

_REPORTS = (
    "table3", "table4", "table6", "fig7", "fig8", "fig9",
    "fig10", "fig12", "fig13", "fig14",
)


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record an execution trace to FILE")
    p.add_argument("--trace-format", default="json",
                   choices=["json", "chrome", "summary"],
                   help="trace file format (default: json)")


def _add_live_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--serve-metrics", default=None, type=int,
                   metavar="PORT",
                   help="serve OpenMetrics + flight-recorder state on "
                        "127.0.0.1:PORT while the command runs "
                        "(0 picks a free port)")
    p.add_argument("--serve-linger", default=0.0, type=float,
                   metavar="SECONDS",
                   help="keep the --serve-metrics endpoint up this "
                        "long after the command finishes (default: 0)")
    p.add_argument("--event-log", default=None, metavar="FILE",
                   help="append the structured JSONL event narration "
                        "to FILE (default: $REPRO_EVENT_LOG if set)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MSC stencil DSL (ICPP'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="AOT-compile a .msc program")
    p.add_argument("file", help="MSC source file")
    p.add_argument("--target", default="cpu",
                   choices=["cpu", "matrix", "sunway", "mpi"])
    p.add_argument("-o", "--output", default=".",
                   help="directory for the generated bundle")
    p.add_argument("--name", default=None, help="bundle name stem")
    p.add_argument("--no-check", action="store_true",
                   help="skip the static schedule-legality gate")
    _add_trace_flags(p)

    p = sub.add_parser("check", help="static schedule-legality analysis")
    p.add_argument("source", nargs="?",
                   help=".msc source file or Table-4 benchmark name")
    p.add_argument("--machine", default=None,
                   choices=["sunway", "matrix", "cpu"],
                   help="machine whose constraints to check (default: "
                        "machine-independent checks for .msc files, "
                        "sunway for benchmark names)")
    p.add_argument("--mpi-grid", default=None, metavar="G0,G1[,G2]",
                   help="override the MPI process grid")
    p.add_argument("--list-codes", action="store_true",
                   help="list every diagnostic code and exit")
    _add_trace_flags(p)

    p = sub.add_parser("run", help="execute a .msc program")
    p.add_argument("file")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="save result as .npy")
    p.add_argument("--backend", default="auto",
                   choices=("auto", "native", "numpy"),
                   help="single-node execution engine: compiled C "
                        "shared library (native), numpy, or auto "
                        "(native when gcc is available)")
    p.add_argument("--exchange-mode", default=None,
                   choices=["basic", "diag", "overlap"],
                   help="halo-exchange wire protocol for distributed "
                        "runs (default: the exchanger's own)")
    p.add_argument("--serial", action="store_true",
                   help="ignore the program's MPI shape")
    p.add_argument("--scalar", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a runtime scalar coefficient (repeatable)")
    p.add_argument("--no-check", action="store_true",
                   help="skip the static schedule-legality gate")
    _add_trace_flags(p)
    _add_live_flags(p)

    p = sub.add_parser("simulate", help="timing report for a benchmark")
    p.add_argument("benchmark")
    p.add_argument("--machine", default="sunway",
                   choices=["sunway", "matrix", "cpu"])
    p.add_argument("--precision", default="fp64",
                   choices=["fp64", "fp32"])
    p.add_argument("--timesteps", type=int, default=1)
    p.add_argument("--skip-pipeline", action="store_true",
                   help="timing report only: skip the codegen and "
                        "distributed-exchange pipeline stages")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="inject faults into the distributed-exchange "
                        "stage, e.g. 'drop:p=0.2,crash:rank=1:step=5' "
                        "(see docs/RESILIENCE.md)")
    p.add_argument("--exchange-mode", default=None,
                   choices=["basic", "diag", "overlap"],
                   help="halo-exchange wire protocol for the "
                        "distributed-exchange stage")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for deterministic fault injection "
                        "(default: 0)")
    p.add_argument("--no-check", action="store_true",
                   help="skip the static schedule-legality gate")
    _add_trace_flags(p)
    _add_live_flags(p)

    p = sub.add_parser("tune", help="auto-tune a benchmark")
    p.add_argument("benchmark")
    p.add_argument("--nprocs", type=int, default=128)
    p.add_argument("--shape", default=None,
                   help="comma-separated global shape")
    p.add_argument("--iterations", type=int, default=20000)
    p.add_argument("--seed", type=int, default=0)
    _add_trace_flags(p)
    _add_live_flags(p)

    p = sub.add_parser("bench", help="statistical performance benchmark")
    p.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                   help="'<bench>@<machine>', 'exchange:<bench>' or "
                        "'exchange:<bench>@<mode>' "
                        "(default: the perf-smoke pair; see --list)")
    p.add_argument("--list", action="store_true", dest="list_workloads",
                   help="list the built-in workloads and exit")
    p.add_argument("--name", default=None,
                   help="bench document name (BENCH_<name>.json)")
    p.add_argument("--repeats", type=int, default=5,
                   help="measured repeats per workload (default: 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="discarded warmup runs (default: 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (fixed across repeats)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="where to write the bench document "
                        "(default: ./BENCH_<name>.json, mirrored to "
                        "benchmarks/results/ when present)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="compare against a baseline bench document; "
                        "exit 1 on regression")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="regression noise threshold as a fraction "
                        "(default: 0.10)")
    p.add_argument("--report-only", action="store_true",
                   help="with --compare: print deltas but always "
                        "exit 0")
    p.add_argument("--backend", default=None,
                   choices=("auto", "native", "numpy"),
                   help="also execute <bench>@<machine> workloads "
                        "through this engine (adds exec.* metrics and "
                        "host-phase attribution)")
    p.add_argument("--perturb", action="append", default=[],
                   metavar="PARAM=FACTOR",
                   help="multiply a machine-spec field (e.g. "
                        "dma_startup_us=10) — for regression-gate "
                        "testing (repeatable)")
    _add_live_flags(p)

    p = sub.add_parser("verify", help="Sec. 5.1 correctness check")
    p.add_argument("benchmark")
    p.add_argument("--precision", default="fp64",
                   choices=["fp64", "fp32"])
    p.add_argument("--timesteps", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    _add_trace_flags(p)

    p = sub.add_parser("report", help="regenerate a paper artefact")
    p.add_argument("experiment", choices=list(_REPORTS))

    p = sub.add_parser("trace", help="summarize a saved trace file")
    p.add_argument("file", help="trace file (repro json or chrome "
                                "trace_event format)")
    p.add_argument("--by-rank", action="store_true",
                   help="print only the per-rank phase table")
    p.add_argument("--distributed", action="store_true",
                   help="add per-rank tables, flow-edge stats and the "
                        "critical-path summary")

    p = sub.add_parser(
        "monitor",
        help="live ASCII dashboard over a running job's telemetry",
    )
    p.add_argument("source",
                   help="scrape URL (http://127.0.0.1:PORT from "
                        "--serve-metrics) or an --event-log JSONL file")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (no screen refresh)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds (default: 1.0)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="scrape timeout in seconds (default: 5.0)")

    p = sub.add_parser(
        "diff",
        help="attribute the performance delta between two runs",
    )
    p.add_argument("base", help="run to compare against: a ledger id "
                                "(e.g. '3' or 'ledger:3'), a "
                                "BENCH_*.json document, or a --trace "
                                "file")
    p.add_argument("current", help="run under scrutiny (same forms)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="regression noise threshold as a fraction "
                        "(default: 0.10)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable output")

    p = sub.add_parser(
        "history",
        help="metric trend + change-point report for a workload",
    )
    p.add_argument("workload", nargs="?",
                   help="ledger workload key, e.g. '3d7pt_star@sunway' "
                        "(omit to list recorded workloads)")
    p.add_argument("--metric", default=None, metavar="M",
                   help="track one metric (default: every gated metric)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="only the newest N runs")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="change-point shift threshold as a fraction "
                        "(default: 0.10)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable output")
    p.add_argument("--no-annotate", action="store_true",
                   help="do not write change-point verdicts back into "
                        "the ledger")

    p = sub.add_parser(
        "critpath",
        help="communication critical path of a saved distributed trace",
    )
    p.add_argument("file", help="trace file (repro json or chrome "
                                "trace_event format)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable output")

    sub.add_parser("list", help="list benchmarks, reports and "
                                "trace exporters")
    return parser


def _cmd_compile(args) -> int:
    from .frontend.lang import parse_program

    with open(args.file) as fh:
        parsed = parse_program(fh.read())
    name = args.name or parsed.stencil_name
    code = parsed.program.compile_to_source_code(
        name, target=args.target, check=not args.no_check
    )
    paths = code.write_to(args.output)
    print(f"generated {len(paths)} files for target {args.target!r}:")
    for path in paths:
        print(f"  {path}")
    return 0


def _cmd_check(args) -> int:
    import os

    from .analysis import DIAGNOSTIC_CODES, check_program

    if args.list_codes:
        print("diagnostic codes (see docs/ANALYSIS.md):")
        for code, summary in DIAGNOSTIC_CODES.items():
            print(f"  {code:9s} {summary}")
        return 0
    if not args.source:
        print("error: a .msc file or benchmark name is required "
              "(or --list-codes)", file=sys.stderr)
        return 2

    if os.path.exists(args.source):
        from .frontend.lang import parse_program

        with open(args.source) as fh:
            parsed = parse_program(fh.read())
        program = parsed.program
        name = parsed.stencil_name
        machine = None
        if args.machine:
            from .machine.spec import machine_by_name

            machine = machine_by_name(args.machine)
    else:
        from .evalsuite.harness import build_with_schedule
        from .machine.spec import machine_by_name

        target = args.machine or "sunway"
        program, _ = build_with_schedule(args.source, target)
        name = args.source
        machine = machine_by_name(target)

    grid = program.mpi_grid
    if args.mpi_grid:
        grid = tuple(int(g) for g in args.mpi_grid.split(","))
    report = check_program(
        program.ir, program.schedules(), machine=machine, mpi_grid=grid
    )
    label = machine.name if machine else "any machine"
    if len(report):
        print(report.format())
    if report.ok:
        print(f"{name}: schedule is legal on {label}")
        return 0
    print(f"{name}: schedule is ILLEGAL on {label}")
    return 1


def _cmd_run(args) -> int:
    import os

    from .frontend.lang import parse_program
    from .obs import ledger as obs_ledger

    with open(args.file) as fh:
        parsed = parse_program(fh.read())
    obs_ledger.note(
        workload=f"run:{os.path.splitext(os.path.basename(args.file))[0]}",
        config={"file": os.path.basename(args.file),
                "steps": args.steps, "seed": args.seed},
    )
    if parsed.pipeline is not None:
        return _run_pipeline(args, parsed)
    program = parsed.program
    if args.serial:
        program.mpi_grid = None
    for item in args.scalar:
        name, _, value = item.partition("=")
        if not value:
            print(f"error: --scalar expects NAME=VALUE, got {item!r}",
                  file=sys.stderr)
            return 1
        program.set_scalar(name, float(value))
    tensor = program.ir.output
    rng = np.random.default_rng(args.seed)
    need = program.ir.required_time_window - 1
    program.set_initial([
        rng.random(tensor.shape).astype(tensor.dtype.np_dtype)
        for _ in range(need)
    ])
    distributed = bool(
        program.mpi_grid and int(np.prod(program.mpi_grid)) > 1
    )
    mode = (
        f"distributed over {program.mpi_grid}" if distributed
        else "single-node"
    )
    print(f"running {parsed.stencil_name!r}: grid {tensor.shape}, "
          f"{args.steps} steps, {mode}")
    backend = getattr(args, "backend", "auto")
    if distributed:
        if backend == "native":
            print("note: distributed runs execute on the simulated "
                  "MPI runtime (numpy); --backend native ignored")
        backend = None
    else:
        from .backend.native import NativeUnavailable, select_backend

        try:
            choice, reason = select_backend(backend)
        except NativeUnavailable as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"backend: {choice} ({reason})")
    exchange_mode = getattr(args, "exchange_mode", None)
    if exchange_mode and not distributed:
        print("note: --exchange-mode only affects distributed runs")
    cfg = {"stencil": parsed.stencil_name, "backend": backend,
           "distributed": distributed}
    if distributed:
        cfg["mpi_grid"] = list(program.mpi_grid)
        if exchange_mode:
            cfg["exchange_mode"] = exchange_mode
    cfg.update(obs_ledger.program_fingerprints(program))
    obs_ledger.note(config=cfg)
    result = program.run(timesteps=args.steps, check=not args.no_check,
                         backend=backend, exchange_mode=exchange_mode)
    print(f"result: mean={result.mean():.6e} "
          f"l2={np.linalg.norm(result):.6e}")
    obs_ledger.note(metrics={
        "run.result_l2": obs_ledger.metric_point(
            float(np.linalg.norm(result))),
    })
    if args.out:
        np.save(args.out, result)
        print(f"saved to {args.out}")
    return 0


def _run_pipeline(args, parsed) -> int:
    from .backend.pipeline_exec import (
        PipelineExecutor,
        distributed_pipeline_run,
    )

    pipe = parsed.pipeline
    rng = np.random.default_rng(args.seed)
    seeds = {
        name: [rng.random(pipe.shape) for _ in range(k)]
        for name, k in pipe.required_history().items()
        if k > 0
    }
    grid = None if args.serial else parsed.mpi_grid
    if grid is not None and int(np.prod(grid)) > 1:
        print(f"running pipeline {pipe!r}: {args.steps} steps, "
              f"distributed over {grid}")
        results = distributed_pipeline_run(
            pipe, seeds, args.steps, grid
        )
    else:
        print(f"running pipeline {pipe!r}: {args.steps} steps, "
              "single-node")
        results = PipelineExecutor(pipe).run(seeds, args.steps)
    for name, arr in results.items():
        print(f"  {name}: mean={arr.mean():.6e} "
              f"l2={np.linalg.norm(arr):.6e}")
    if args.out:
        np.savez(args.out, **results)
        print(f"saved to {args.out}")
    return 0


def _cmd_simulate(args) -> int:
    from .evalsuite.harness import build_with_schedule
    from .ir.dtypes import f32, f64
    from .machine.spec import machine_by_name
    from .obs import ledger as obs_ledger

    dtype = f32 if args.precision == "fp32" else f64
    target = args.machine if args.machine != "cpu" else "cpu"
    prog, handle = build_with_schedule(args.benchmark, target, dtype)
    check = not args.no_check
    if not args.skip_pipeline:
        _simulate_codegen_stage(args.benchmark, prog, target, check=check)
    report = prog.simulate(args.machine, timesteps=args.timesteps,
                           check=check)
    # ledger: same `<bench>@<machine>` key as the bench workloads, so
    # simulate and bench runs land in one longitudinal series
    cfg = {"benchmark": args.benchmark, "machine": args.machine,
           "precision": args.precision, "timesteps": args.timesteps,
           "machine_spec": obs_ledger.machine_spec_hash(
               machine_by_name(args.machine))}
    if getattr(args, "exchange_mode", None):
        cfg["exchange_mode"] = args.exchange_mode
    cfg.update(obs_ledger.program_fingerprints(prog))
    obs_ledger.note(
        workload=f"{args.benchmark}@{args.machine}",
        config=cfg,
        metrics={
            "sim.step_s": obs_ledger.metric_point(
                report.step_s, unit="s", direction="lower", gate=True),
            "sim.gflops": obs_ledger.metric_point(
                report.gflops, unit="GFlop/s", direction="higher",
                gate=True),
        },
        phases_sim={name: {"time_s": float(t)}
                    for name, t in report.phases().items()},
    )
    print(f"{args.benchmark} on {report.machine} ({report.precision}):")
    print(f"  per-step: {report.step_s * 1e3:.3f} ms "
          f"(memory {report.memory_s * 1e3:.3f} ms, "
          f"compute {report.compute_s * 1e3:.3f} ms)")
    print(f"  achieved: {report.gflops:.1f} GFlops")
    for key, val in sorted(report.details.items()):
        print(f"  {key}: {val:.4g}")
    if not args.skip_pipeline:
        return _simulate_exchange_stage(
            args.benchmark, dtype, spec=args.inject_faults,
            seed=args.fault_seed,
            exchange_mode=getattr(args, "exchange_mode", None),
        )
    if args.inject_faults:
        print("warning: --inject-faults has no effect with "
              "--skip-pipeline", file=sys.stderr)
    return 0


def _simulate_codegen_stage(benchmark: str, prog, target: str,
                            check: bool = True) -> None:
    """AOT-generate the target bundle (the paper's full DSL→code flow)."""
    try:
        code = prog.compile_to_source_code(benchmark, target=target,
                                           check=check)
    except Exception as exc:  # noqa: BLE001 - report, don't abort timing
        print(f"codegen [{target}]: skipped ({exc})")
        return
    nbytes = sum(len(text) for text in code.files.values())
    print(f"codegen [{target}]: {len(code.files)} files, {nbytes} bytes")


def _simulate_exchange_stage(benchmark: str, dtype,
                             spec: Optional[str] = None,
                             seed: int = 0,
                             exchange_mode: Optional[str] = None) -> int:
    """Scaled-down distributed run: exercises the communication library
    and the distributed runtime (and records them under ``--trace``).

    With a fault ``spec``, a seeded injector is attached to the
    simulated world and the async exchanger's retransmission protocol
    keeps the run correct (or surfaces an unrecoverable failure)."""
    from .frontend.stencils import benchmark_by_name
    from .obs import registry
    from .runtime.executor import distributed_run
    from .runtime.faults import FaultInjector
    from .runtime.simmpi import SimMPIError

    injector = FaultInjector(spec, seed=seed) if spec else None
    bench = benchmark_by_name(benchmark)
    grid = (2, 2) if bench.ndim == 2 else (2, 1, 2)
    base = (24, 20) if bench.ndim == 2 else (12, 12, 12)
    shape = tuple(max(s, 4 * bench.radius) for s in base)
    steps = 2
    try:
        demo, _ = bench.build(grid=shape, dtype=dtype,
                              boundary="periodic")
        need = demo.ir.required_time_window - 1
        rng = np.random.default_rng(0)
        init = [
            rng.random(shape).astype(dtype.np_dtype) for _ in range(need)
        ]
        result = distributed_run(
            demo.ir, init, steps, grid, boundary="periodic",
            faults=injector, exchange_mode=exchange_mode,
        )
    except SimMPIError as exc:
        if injector is None:
            print(f"distributed exchange: skipped ({exc})")
            return 0
        # an unrecoverable injected failure is a result, not a skip
        print(f"distributed exchange: FAILED under injected faults "
              f"({injector.summary()})")
        print(f"  {exc}")
        return 1
    except Exception as exc:  # noqa: BLE001 - report, don't abort timing
        print(f"distributed exchange: skipped ({exc})")
        return 0
    mode_note = f" [{exchange_mode}]" if exchange_mode else ""
    print(f"distributed exchange{mode_note}: {steps} steps on {shape} "
          f"over MPI grid {grid}, l2={np.linalg.norm(result):.6e}")
    if injector is not None:
        print(f"  injected faults (seed {seed}): {injector.summary()}")
    reg = registry()
    if reg.enabled:
        msgs = reg.counter_total("comm.messages")
        byts = reg.counter_total("comm.bytes_sent")
        print(f"  halo traffic: {msgs:g} messages, {byts:g} bytes")
        if injector is not None:
            print(f"  retries: {reg.counter_total('comm.retry'):g}")
    return 0


def _cmd_tune(args) -> int:
    from .autotune import AutoTuner
    from .frontend.stencils import benchmark_by_name

    bench = benchmark_by_name(args.benchmark)
    if args.shape:
        shape = tuple(int(s) for s in args.shape.split(","))
    else:
        shape = bench.default_grid
    prog, _ = bench.build(grid=shape)
    tuner = AutoTuner(prog.ir, shape, nprocs=args.nprocs)
    result = tuner.tune(iterations=args.iterations, seed=args.seed)
    from .obs import ledger as obs_ledger

    obs_ledger.note(
        workload=f"tune:{args.benchmark}",
        config={"benchmark": args.benchmark, "nprocs": args.nprocs,
                "shape": list(shape), "iterations": args.iterations,
                "seed": args.seed,
                "best_tile": list(result.best.tile),
                "best_mpi_grid": list(result.best.mpi_grid),
                "best_exchange_mode": result.best.exchange_mode,
                **obs_ledger.program_fingerprints(prog)},
        metrics={
            "tune.best_time_s": obs_ledger.metric_point(
                result.best_time, unit="s", direction="lower",
                gate=True),
            "tune.improvement": obs_ledger.metric_point(
                result.improvement, unit="x", direction="higher",
                gate=True),
            "tune.pruned": obs_ledger.metric_point(
                float(result.pruned)),
        },
    )
    print(f"tuned {args.benchmark} over {shape} on {args.nprocs} CGs:")
    print(f"  best tiles {result.best.tile}, "
          f"MPI grid {result.best.mpi_grid}, "
          f"exchange mode {result.best.exchange_mode}")
    print(f"  step time {result.best_time * 1e3:.3f} ms, "
          f"improvement {result.improvement:.2f}x, "
          f"R^2 {result.model_r2:.3f}")
    print(f"  pruned {result.pruned} illegal points before the "
          "performance model")
    return 0


def _cmd_bench(args) -> int:
    import os

    from .obs import perf

    if args.list_workloads:
        print("built-in bench workloads (default: "
              + " ".join(perf.DEFAULT_WORKLOADS) + "):")
        for name in perf.available_workloads():
            print(f"  {name}")
        return 0

    perturb = {}
    for item in args.perturb:
        key, _, factor = item.partition("=")
        if not factor:
            print(f"error: --perturb expects PARAM=FACTOR, got {item!r}",
                  file=sys.stderr)
            return 2
        perturb[key] = float(factor)

    workloads, default_name = perf.resolve_workloads(
        args.workloads, perturb=perturb or None,
        backend=getattr(args, "backend", None),
    )
    name = args.name or default_name
    print(f"benching {len(workloads)} workload(s), "
          f"{args.repeats} repeats + {args.warmup} warmup, "
          f"seed {args.seed} ...")
    doc = perf.run_bench(workloads, name, repeats=args.repeats,
                         warmup=args.warmup, seed=args.seed)
    print(perf.format_bench(doc))

    # ledger: one row per workload, so `repro history <workload>` has a
    # natural longitudinal key
    from .obs import ledger as obs_ledger

    for wname, wl in doc["workloads"].items():
        obs_ledger.note_workload(
            wname,
            config=wl.get("meta"),
            metrics=wl.get("metrics"),
            phases_sim=wl.get("phases_sim"),
            phases_host=wl.get("phases_host"),
            environment=doc.get("environment"),
        )

    out = args.out or perf.bench_filename(name)
    perf.write_bench(out, doc)
    written = [out]
    results_dir = os.path.join("benchmarks", "results")
    if args.out is None and os.path.isdir(results_dir):
        mirror = os.path.join(results_dir, f"{name}.json")
        perf.write_bench(mirror, doc)
        written.append(mirror)
    print()
    for path in written:
        print(f"bench document written to {path}")

    if not args.compare:
        return 0
    baseline = perf.load_bench(args.compare)
    cmp = perf.compare(doc, baseline, threshold=args.threshold)
    print()
    print(cmp.format())
    if not cmp.ok:
        worst = max(cmp.regressions, key=lambda d: d.worse_frac)
        obs_ledger.note(verdict=(
            f"regression vs {os.path.basename(args.compare)}: "
            f"{len(cmp.regressions)} delta(s), worst {worst.label} "
            f"{worst.worse_frac:+.1%}"
        ))
    if cmp.ok or args.report_only:
        if not cmp.ok:
            print("(report-only mode: regressions do not fail the run)")
        return 0
    return 1


def _cmd_verify(args) -> int:
    from .evalsuite.verify import verify_benchmark
    from .ir.dtypes import f32, f64

    dtype = f32 if args.precision == "fp32" else f64
    results = verify_benchmark(
        args.benchmark, dtype=dtype, timesteps=args.timesteps,
        seed=args.seed,
    )
    print(f"{args.benchmark} ({args.precision}, tolerance "
          f"{dtype.tolerance:g}):")
    failed = False
    for r in results:
        if not r.ran:
            print(f"  {r.path:24s} SKIPPED ({r.note})")
            continue
        status = "PASS" if r.passed else "FAIL"
        failed |= not r.passed
        print(f"  {r.path:24s} rel. err = {r.rel_error:.3e}  {status}")

    from .obs import ledger as obs_ledger

    ran = [r for r in results if r.ran]
    obs_ledger.note(
        workload=f"verify:{args.benchmark}",
        config={"benchmark": args.benchmark,
                "precision": args.precision,
                "timesteps": args.timesteps, "seed": args.seed},
        metrics={
            "verify.paths_ran": obs_ledger.metric_point(
                float(len(ran)), direction="higher"),
            "verify.failures": obs_ledger.metric_point(
                float(sum(not r.passed for r in ran)),
                direction="lower", gate=True),
            "verify.max_rel_error": obs_ledger.metric_point(
                max((r.rel_error for r in ran), default=0.0),
                direction="lower"),
        },
    )
    return 1 if failed else 0


def _cmd_report(args) -> int:
    from .evalsuite import (
        fig7_rows, fig8_rows, fig9_points, fig10_curves, fig12_rows,
        fig13_rows, fig14_rows, format_table, table3_rows, table4_rows,
        table6_rows,
    )

    name = args.experiment
    if name == "table3":
        rows = [
            {"platform": r["platform"], "processor": r["processor"]}
            for r in table3_rows()
        ]
        print(format_table(rows, ["platform", "processor"], "Table 3"))
    elif name == "table4":
        print(format_table(
            table4_rows(),
            ["benchmark", "read_bytes", "write_bytes", "ops", "time_dep"],
            "Table 4",
        ))
    elif name == "table6":
        print(format_table(
            table6_rows(), ["benchmark", "msc", "openacc", "openmp"],
            "Table 6",
        ))
    elif name == "fig7":
        print(format_table(
            fig7_rows("fp64"), ["benchmark", "speedup"], "Fig. 7 (fp64)"
        ))
    elif name == "fig8":
        print(format_table(
            fig8_rows("fp64"), ["benchmark", "speedup"], "Fig. 8 (fp64)"
        ))
    elif name == "fig9":
        rows = [
            {"benchmark": p.name, "oi": p.operational_intensity,
             "bound": p.bound}
            for p in fig9_points("sunway")
        ]
        print(format_table(rows, ["benchmark", "oi", "bound"],
                           "Fig. 9 (Sunway)"))
    elif name == "fig10":
        for mode in ("strong", "weak"):
            curves = fig10_curves("sunway", mode,
                                  benchmarks=["3d7pt_star"])
            pts = curves["3d7pt_star"]
            print(f"Fig. 10 sunway {mode} 3d7pt_star: "
                  + " ".join(f"{p.cores}c={p.gflops:.0f}GF" for p in pts))
    elif name == "fig12":
        print(format_table(
            fig12_rows(), ["benchmark", "speedup_msc", "speedup_aot"],
            "Fig. 12",
        ))
    elif name == "fig13":
        print(format_table(
            fig13_rows(), ["benchmark", "speedup"], "Fig. 13"
        ))
    elif name == "fig14":
        print(format_table(
            fig14_rows(), ["benchmark", "speedup"], "Fig. 14"
        ))
    return 0


def _cmd_trace(args) -> int:
    from .obs.distributed import (
        DistributedTrace,
        extract_critical_path,
        format_by_rank,
        format_critical_path,
    )
    from .obs.export import _summarize, load_trace

    doc = load_trace(args.file)
    dt = DistributedTrace.from_doc(doc)
    if args.by_rank:
        print(format_by_rank(dt))
        return 0
    print(_summarize(doc.get("spans", []), doc.get("metrics", {})))
    if args.distributed or len(dt.ranks) >= 2:
        print()
        print(format_by_rank(dt))
    if args.distributed:
        print()
        print(f"flow edges: {len(dt.edges)} matched, "
              f"{len(dt.dangling_out)} dangling outbound (dropped), "
              f"{len(dt.orphan_in)} orphan inbound")
        print()
        print(format_critical_path(extract_critical_path(dt)))
    return 0


def _cmd_monitor(args) -> int:
    from .obs.monitor import run_monitor

    return run_monitor(args.source, once=args.once,
                       interval=args.interval, timeout=args.timeout)


def _cmd_critpath(args) -> int:
    import json

    from .obs.distributed import (
        DistributedTrace,
        extract_critical_path,
        format_by_rank,
        format_critical_path,
        imbalance_report,
    )

    dt = DistributedTrace.from_file(args.file)
    problems = dt.validate()
    if problems:
        print(f"error: malformed trace DAG in {args.file}:",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    cp = extract_critical_path(dt)
    rep = imbalance_report(dt)
    if args.as_json:
        print(json.dumps({
            "file": args.file,
            "ranks": dt.ranks,
            "critical_path": cp.to_dict(),
            "imbalance": rep.to_dict(),
        }, indent=2))
        return 0
    print(format_critical_path(cp))
    if len(dt.ranks) >= 2:
        print()
        print(format_by_rank(dt, rep))
    return 0


def _cmd_diff(args) -> int:
    import json

    from .obs.diff import diff_runs, load_views

    base = load_views(args.base)
    current = load_views(args.current)
    report = diff_runs(base, current, threshold=args.threshold,
                       base_label=args.base, current_label=args.current)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_history(args) -> int:
    import json
    import os

    from .obs import ledger as obs_ledger
    from .obs.diff import annotate_history, history_report

    path = obs_ledger.ledger_path()
    if not os.path.exists(path):
        print(f"error: no run ledger at {path} (any run/simulate/tune/"
              f"bench/verify invocation creates it)", file=sys.stderr)
        return 1
    with obs_ledger.open_ledger() as ledger:
        if not args.workload:
            recorded = ledger.workloads()
            if not recorded:
                print(f"run ledger at {path} is empty")
                return 0
            print(f"recorded workloads ({path}):")
            for wname, n in recorded:
                print(f"  {wname:36s} {n} run(s)")
            return 0
        rows = ledger.query(workload=args.workload, limit=args.limit)
        if not rows:
            print(f"error: no ledger runs for workload "
                  f"{args.workload!r} ({path})", file=sys.stderr)
            return 1
        report = history_report(rows, args.workload, metric=args.metric,
                                threshold=args.threshold)
        applied = [] if args.no_annotate else \
            annotate_history(ledger, report)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(report.format())
    for line in applied:
        print(f"ledger annotated: {line}")
    return 0


def _cmd_list(_args) -> int:
    from .frontend.stencils import ALL_BENCHMARKS
    from .obs import INSTRUMENTED_SUBSYSTEMS
    from .obs.export import EXPORT_FORMATS

    print("Table-4 benchmarks:")
    for bench in ALL_BENCHMARKS:
        print(f"  {bench.name:14s} {bench.ndim}D {bench.shape:4s} "
              f"radius {bench.radius}, {bench.points} points")
    print("reports:", ", ".join(_REPORTS))
    print("trace exporters:", ", ".join(EXPORT_FORMATS))
    print("bench workloads: <bench>@{sunway,matrix,cpu}, "
          "exchange:<bench>  (repro bench --list)")
    print("instrumented subsystems:",
          ", ".join(INSTRUMENTED_SUBSYSTEMS))
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "check": _cmd_check,
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "tune": _cmd_tune,
    "bench": _cmd_bench,
    "verify": _cmd_verify,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "monitor": _cmd_monitor,
    "critpath": _cmd_critpath,
    "diff": _cmd_diff,
    "history": _cmd_history,
    "list": _cmd_list,
}


def _flight_default_on() -> bool:
    """Flight recorder on unless ``REPRO_FLIGHT`` opts out."""
    import os

    return os.environ.get("REPRO_FLIGHT", "1").lower() not in (
        "0", "off", "false", "no",
    )


def _flight_capacity() -> int:
    import os

    from .obs.trace import DEFAULT_FLIGHT_CAPACITY

    raw = os.environ.get("REPRO_FLIGHT_CAPACITY", "")
    try:
        return max(1, int(raw)) if raw else DEFAULT_FLIGHT_CAPACITY
    except ValueError:
        return DEFAULT_FLIGHT_CAPACITY


def main(argv: Optional[List[str]] = None) -> int:
    import os
    import time as _time

    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "trace", None)
    serve_port = getattr(args, "serve_metrics", None)
    event_path = getattr(args, "event_log", None) or os.environ.get(
        "REPRO_EVENT_LOG"
    )
    if trace_file:
        from . import obs

        obs.reset()
        obs.enable()

    # flight recorder: always-on ring of completed spans (bounded, so
    # safe as a default).  Prior state is restored on exit because the
    # test suite calls main() in-process.
    from .obs import events as obs_events
    from .obs import trace as obs_trace

    tr = obs_trace.tracer()
    prior_flight = tr.flight
    if _flight_default_on():
        obs_trace.enable_flight(capacity=_flight_capacity())

    # run ledger: every recording command appends a row by default
    # (REPRO_LEDGER=0 opts out); commands contribute fingerprints and
    # metrics through obs_ledger.note()/note_workload() while they run
    from .obs import ledger as obs_ledger

    record_run = (args.command in obs_ledger.LEDGED_COMMANDS
                  and obs_ledger.enabled())
    if record_run:
        obs_ledger.begin(args.command)

    installed_sink = None
    if event_path:
        # replaces (and closes) any previously installed sink
        installed_sink = obs_events.install(event_path)

    server = sampler = None
    prior_reg_enabled = None
    if serve_port is not None:
        from .obs import registry
        from .obs.live import MetricsSampler, TelemetryServer

        reg = registry()
        prior_reg_enabled = reg.enabled
        reg.enable()
        sampler = MetricsSampler()
        sampler.start()
        server = TelemetryServer(port=serve_port, sampler=sampler)
        server.start()
        print(f"serving telemetry on {server.url}/metrics "
              f"(also /flight, /series)")

    rc = 1
    try:
        from .obs import span

        with span(f"cli.{args.command}"):
            obs_events.emit("cli.start", command=args.command)
            rc = _COMMANDS[args.command](args)
            obs_events.emit("cli.exit", command=args.command, rc=rc)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
    finally:
        if trace_file:
            from . import obs

            obs.disable()
        if server is not None:
            linger = getattr(args, "serve_linger", 0.0) or 0.0
            if linger > 0:
                print(f"telemetry endpoint lingering {linger:g}s "
                      f"at {server.url} ...")
                _time.sleep(linger)
            server.stop()
            sampler.stop(final_sample=False)
            if prior_reg_enabled is False:
                from .obs import registry

                registry().disable()
        if record_run:
            # fold this invocation's spans (full trace when --trace was
            # given, else the flight ring) into the ledger row — before
            # the flight-recorder state is restored below
            if trace_file:
                led_spans = list(tr.records)
            elif tr.flight is not None:
                led_spans = tr.flight.snapshot()
            else:
                led_spans = None
            obs_ledger.finish(rc, spans=led_spans)
        if installed_sink is not None:
            obs_events.uninstall()
        # restore the caller's flight-recorder state
        tr._flight = prior_flight
        tr._sync()
    if trace_file:
        from .obs import tracer
        from .obs.export import write_trace

        try:
            write_trace(trace_file, args.trace_format)
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(f"trace written to {trace_file} "
              f"({args.trace_format}, {len(tracer().records)} spans)")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
