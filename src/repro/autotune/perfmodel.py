"""Analytical performance model fit by multivariable linear regression.

The paper (Sec. 4.4, "Performance auto-tuning") builds a linear model
of the stencil kernel time over tuning parameters — considering MPI
initialisation, kernel computation, packing/unpacking and transfer
time — and lets simulated annealing search on the cheap surrogate
instead of timing every candidate.

Features are physically-motivated transforms of the raw knobs (tile
sizes, MPI grid), so a *linear* model fits well: tile-halo overhead,
DMA request counts, per-process halo volume, message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["TuningConfig", "PerformanceModel"]


@dataclass(frozen=True)
class TuningConfig:
    """One point of the tuning space: tiles + MPI grid + exchange mode."""

    tile: Tuple[int, ...]
    mpi_grid: Tuple[int, ...]
    exchange_mode: str = "basic"

    def __post_init__(self) -> None:
        if len(self.tile) != len(self.mpi_grid):
            raise ValueError("tile and MPI grid rank mismatch")
        if any(t < 1 for t in self.tile):
            raise ValueError(f"tile sizes must be >= 1: {self.tile}")
        if any(g < 1 for g in self.mpi_grid):
            raise ValueError(f"grid extents must be >= 1: {self.mpi_grid}")
        from ..comm.exchange import EXCHANGE_MODES

        if self.exchange_mode not in EXCHANGE_MODES:
            raise ValueError(
                f"unknown exchange mode {self.exchange_mode!r}; "
                f"available: {list(EXCHANGE_MODES)}"
            )

    @property
    def nprocs(self) -> int:
        n = 1
        for g in self.mpi_grid:
            n *= g
        return n


class PerformanceModel:
    """Linear regression over engineered features of a TuningConfig."""

    FEATURE_NAMES = (
        "bias",
        "ntiles_per_proc",  # DMA request count → startup latency term
        "halo_overhead",  # padded/interior tile ratio → redundant bytes
        "points_per_proc",  # streamed volume → bandwidth term
        "halo_bytes_per_proc",  # pack/transfer/unpack volume
        "messages",  # per-step message count → network latency term
        "grid_imbalance",  # worst/mean sub-domain ratio
        "diag_mode",  # 1.0 when the coalesced diag protocol is active
        "overlap_mode",  # 1.0 when compute/comm overlap is active
    )

    def __init__(self, global_shape: Sequence[int], radius: Sequence[int],
                 elem_bytes: int = 8):
        self.global_shape = tuple(int(s) for s in global_shape)
        self.radius = tuple(int(r) for r in radius)
        self.elem = elem_bytes
        self.coef: np.ndarray | None = None

    # -- feature engineering ------------------------------------------------------
    def _sub_shape(self, config: TuningConfig) -> Tuple[int, ...]:
        # the largest sub-domain determines the critical path
        return tuple(
            -(-s // g) for s, g in zip(self.global_shape, config.mpi_grid)
        )

    def features(self, config: TuningConfig) -> np.ndarray:
        sub = self._sub_shape(config)
        tile = tuple(min(t, s) for t, s in zip(config.tile, sub))
        ntiles = 1
        interior = 1
        padded = 1
        for s, t, r in zip(sub, tile, self.radius):
            ntiles *= -(-s // t)
            interior *= t
            padded *= t + 2 * r
        points = 1
        for s in sub:
            points *= s
        halo_bytes = 0
        ndim = len(sub)
        for d in range(ndim):
            face = 1
            for dd in range(ndim):
                face *= self.radius[d] if dd == d else sub[dd]
            halo_bytes += 2 * face * self.elem
        active = sum(1 for r in self.radius if r > 0)
        if config.exchange_mode == "basic":
            # staged dim-by-dim: two face messages per active dimension
            messages = 2 * active
        else:
            # diag/overlap coalesce every direct neighbour (faces,
            # edges and corners) into one message each
            messages = 3 ** active - 1
        mean_points = 1
        for s, g in zip(self.global_shape, config.mpi_grid):
            mean_points *= s / g
        imbalance = points / mean_points
        return np.array([
            1.0,
            float(ntiles),
            padded / interior,
            float(points),
            float(halo_bytes),
            float(messages),
            imbalance,
            1.0 if config.exchange_mode == "diag" else 0.0,
            1.0 if config.exchange_mode == "overlap" else 0.0,
        ])

    # -- fitting / prediction -------------------------------------------------------
    def fit(self, configs: Sequence[TuningConfig],
            times: Sequence[float]) -> "PerformanceModel":
        """Least-squares fit; needs at least as many samples as features."""
        if len(configs) != len(times):
            raise ValueError("configs/times length mismatch")
        if len(configs) < len(self.FEATURE_NAMES):
            raise ValueError(
                f"need >= {len(self.FEATURE_NAMES)} samples, got "
                f"{len(configs)}"
            )
        X = np.stack([self.features(c) for c in configs])
        y = np.asarray(times, dtype=float)
        # scale columns for conditioning
        scale = np.maximum(np.abs(X).max(axis=0), 1e-12)
        coef, *_ = np.linalg.lstsq(X / scale, y, rcond=None)
        self.coef = coef / scale
        return self

    def predict(self, config: TuningConfig) -> float:
        if self.coef is None:
            raise RuntimeError("model not fitted: call fit() first")
        return float(self.features(config) @ self.coef)

    def score(self, configs: Sequence[TuningConfig],
              times: Sequence[float]) -> float:
        """R² on held-out samples."""
        y = np.asarray(times, dtype=float)
        pred = np.array([self.predict(c) for c in configs])
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
