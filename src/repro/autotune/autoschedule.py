"""Automatic schedule generation for a stencil on a target machine.

Composes the Sec. 4.3 primitives without user input: choose
SPM/cache-feasible tile sizes (small greedy search on the analytical
cost model), order loops outer-tiles-first, stage through SPM on
cache-less targets, parallelise the outermost axis over the cores, and
vectorize the innermost loop.  This is the "no schedule given" path of
the DSL — the hand-written Table-5 schedules or the full auto-tuner
(Sec. 4.4) still win when invoked explicitly.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..ir.kernel import Kernel
from ..ir.stencil import Stencil
from ..machine.spec import MachineSpec, SUNWAY_CG
from ..schedule.legality import check_schedule
from ..schedule.schedule import Schedule

__all__ = ["auto_schedule", "candidate_tiles"]

_AXIS_NAMES = {
    1: ("xo", "xi"),
    2: ("xo", "xi", "yo", "yi"),
    3: ("xo", "xi", "yo", "yi", "zo", "zi"),
}
_REORDER = {
    1: ("xo", "xi"),
    2: ("xo", "yo", "xi", "yi"),
    3: ("xo", "yo", "zo", "xi", "yi", "zi"),
}


def candidate_tiles(shape: Sequence[int],
                    max_candidates: int = 200) -> List[Tuple[int, ...]]:
    """Power-of-two tile candidates, unit-stride dimension longest."""
    ndim = len(shape)
    per_dim: List[List[int]] = []
    for d, s in enumerate(shape):
        cap = min(s, 256 if d == ndim - 1 else 32)
        opts = []
        v = 1
        while v <= cap:
            opts.append(v)
            v *= 2
        per_dim.append(opts)
    combos = list(itertools.product(*per_dim))
    # prefer long unit-stride extents, then larger volume
    combos.sort(key=lambda t: (-t[-1], -_volume(t)))
    return combos[:max_candidates]


def _volume(tile: Sequence[int]) -> int:
    n = 1
    for t in tile:
        n *= t
    return n


def _cost(stencil: Stencil, tile: Tuple[int, ...],
          machine: MachineSpec) -> float:
    """Per-point cost estimate: DMA/cache traffic + request startup."""
    rad = stencil.radius
    elem = stencil.output.dtype.nbytes
    interior = 1
    padded = 1
    for t, r in zip(tile, rad):
        interior *= t
        padded *= t + 2 * r
    if machine.cacheless:
        if (padded + interior) * elem > machine.spm_bytes:
            return float("inf")
    traffic_pp = (padded / interior + 1.0) * elem
    cores = machine.cores_per_node
    startup_pp = (
        2 * machine.dma_startup_us * 1e-6 / interior * cores
        if machine.cacheless else 0.0
    )
    bw = machine.mem_bw_GBs * machine.stream_efficiency * 1e9
    return traffic_pp / bw + startup_pp


def auto_schedule(stencil: Stencil,
                  machine: MachineSpec = SUNWAY_CG,
                  kernel: Optional[Kernel] = None,
                  vectorize: bool = True) -> Schedule:
    """Build a complete legal schedule for ``stencil`` on ``machine``."""
    kern = kernel or stencil.kernels[0]
    shape = stencil.output.shape
    ndim = len(shape)
    best_tile = None
    best_cost = float("inf")
    for tile in candidate_tiles(shape):
        cost = _cost(stencil, tile, machine)
        if cost < best_cost:
            best_cost = cost
            best_tile = tile
    if best_tile is None or best_cost == float("inf"):
        raise ValueError(
            f"no feasible tile for {kern.name!r} on {machine.name} "
            "(stencil radius too wide for the scratchpad?)"
        )

    names = _AXIS_NAMES[ndim]
    sched = Schedule(kern)
    sched.tile(*best_tile, *names)
    sched.reorder(*_REORDER[ndim])
    if machine.cacheless:
        for tensor in kern.input_tensors:
            sched.cache_read(tensor, f"buf_{tensor.name}", "global")
        sched.cache_write("buf_out", "global")
        anchor = _REORDER[ndim][ndim - 1]  # innermost outer axis
        for tensor in kern.input_tensors:
            sched.compute_at(f"buf_{tensor.name}", anchor)
        sched.compute_at("buf_out", anchor)
    sched.parallel("xo", machine.cores_per_node)
    if vectorize:
        sched.vectorize(_REORDER[ndim][-1])
    # final guarantee: the composed schedule is legal on the target
    check_schedule(sched, sched.lower(shape), machine)
    return sched
