"""Performance auto-tuning (Sec. 4.4): linear-regression performance
model + simulated-annealing search over tile sizes and MPI grid shapes."""

from .perfmodel import PerformanceModel, TuningConfig
from .annealing import AnnealingResult, simulated_annealing
from .tuner import AutoTuner, TuningResult
from .autoschedule import auto_schedule, candidate_tiles

__all__ = [
    "PerformanceModel", "TuningConfig",
    "AnnealingResult", "simulated_annealing",
    "AutoTuner", "TuningResult",
    "auto_schedule", "candidate_tiles",
]
