"""The MSC auto-tuner: tile sizes + MPI grid shape (Sec. 4.4, Fig. 11).

Pipeline:

1. sample a few dozen configurations and *measure* them on the
   analytical simulators (single-node kernel time + network exchange
   time — the terms the paper lists: kernel computation, packing/
   unpacking, transfer, MPI setup);
2. fit the linear :class:`~repro.autotune.perfmodel.PerformanceModel`;
3. run simulated annealing on the surrogate;
4. re-measure the winner (guarding against surrogate error) and report
   the convergence history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..analysis import CheckReport, check_config
from ..comm.exchange import EXCHANGE_MODES
from ..ir.analysis import halo_traffic_bytes, stencil_flops_per_point
from ..ir.stencil import Stencil
from ..obs import counter, gauge, observe, span
from ..obs.events import emit
from ..machine.spec import (
    MachineSpec,
    NetworkSpec,
    SUNWAY_CG,
    SUNWAY_NETWORK,
)
from ..runtime.network import NetworkModel
from .annealing import AnnealingResult, simulated_annealing
from .perfmodel import PerformanceModel, TuningConfig

__all__ = ["AutoTuner", "TuningResult"]


@dataclass
class TuningResult:
    """Outcome of one auto-tuning run."""

    best: TuningConfig
    best_time: float
    initial_time: float
    model_r2: float
    annealing: AnnealingResult
    samples: int
    pruned: int = 0  # illegal points rejected by the static checker

    @property
    def improvement(self) -> float:
        return self.initial_time / self.best_time

    @property
    def history(self) -> List[Tuple[int, float]]:
        return self.annealing.history


def _pow2_candidates(extent: int, cap: int = 512) -> List[int]:
    out = []
    v = 1
    while v <= min(extent, cap):
        out.append(v)
        v *= 2
    return out


def _grid_candidates(nprocs: int, ndim: int,
                     global_shape: Sequence[int]) -> List[Tuple[int, ...]]:
    """All factorizations of nprocs into ndim ordered factors that fit."""
    grids: List[Tuple[int, ...]] = []

    def rec(remaining: int, dims: List[int]) -> None:
        if len(dims) == ndim - 1:
            dims = dims + [remaining]
            if all(g <= s for g, s in zip(dims, global_shape)):
                grids.append(tuple(dims))
            return
        f = 1
        while f <= remaining:
            if remaining % f == 0:
                rec(remaining // f, dims + [f])
            f += 1

    rec(nprocs, [])
    return grids


class AutoTuner:
    """Tunes one stencil at one scale on one platform."""

    def __init__(self, stencil: Stencil,
                 global_shape: Sequence[int],
                 nprocs: int,
                 machine: MachineSpec = SUNWAY_CG,
                 network: NetworkSpec = SUNWAY_NETWORK):
        self.stencil = stencil
        self.global_shape = tuple(int(s) for s in global_shape)
        self.nprocs = int(nprocs)
        self.machine = machine
        self.network = NetworkModel(network)
        self.radius = stencil.radius
        self.elem = stencil.output.dtype.nbytes
        self._grids = _grid_candidates(
            self.nprocs, len(self.global_shape), self.global_shape
        )
        if not self._grids:
            raise ValueError(
                f"no valid MPI grid for {self.nprocs} processes over "
                f"{self.global_shape}"
            )

    # -- the measured objective ------------------------------------------------------
    def measure(self, config: TuningConfig) -> float:
        """Per-timestep time (s) of one configuration (analytical).

        kernel time: DMA-staged tile streaming on the machine;
        comm time: async halo exchange on the network (pack/unpack is
        charged at memory bandwidth); plus a fixed MPI progress cost.
        """
        sub = tuple(
            -(-s // g) for s, g in zip(self.global_shape, config.mpi_grid)
        )
        tile = tuple(min(t, s) for t, s in zip(config.tile, sub))
        m = self.machine
        interior = 1
        padded = 1
        ntiles = 1
        for s, t, r in zip(sub, tile, self.radius):
            interior *= t
            padded *= t + 2 * r
            ntiles *= -(-s // t)
        sweeps = len(self.stencil.applications)
        elem = self.elem
        # SPM capacity (single-plane staging per sweep): infeasible
        # tiles get an infinite time
        if m.cacheless:
            spm_need = (padded + interior) * elem
            if spm_need > m.spm_bytes:
                return float("inf")
        cores = m.cores_per_node
        tiles_per_core = -(-ntiles // cores)
        bw_core = m.mem_bw_GBs * m.stream_efficiency * 1e9 / cores
        dma_per_visit = (
            2 * m.dma_startup_us * 1e-6
            + (padded + interior) * elem / bw_core
        )
        flops_pp = stencil_flops_per_point(self.stencil)
        compute_per_visit = interior * flops_pp / sweeps / (
            m.core_gflops() * m.scalar_flop_efficiency * 1e9
        )
        kernel_time = (
            sweeps * tiles_per_core * (dma_per_visit + compute_per_visit)
        )

        halo_bytes = halo_traffic_bytes(self.stencil, sub)
        # basic pays per-dimension phase latency; diag/overlap coalesce
        # all direct neighbours into a single phase
        phases = len(sub) if config.exchange_mode == "basic" else 1
        comm = self.network.exchange_time_s(
            config.nprocs, halo_bytes, phases
        )
        if config.exchange_mode == "overlap":
            # compute/communication overlap hides the exchange behind
            # the CORE block; only the unhidden remainder is charged
            # (floored at 10% for the OWNED-shell finish)
            comm = max(comm - kernel_time, 0.1 * comm)
        pack = 2.0 * halo_bytes / (m.mem_bw_GBs * 1e9)
        mpi_setup = 2e-6
        return kernel_time + comm + pack + mpi_setup

    # -- static legality ---------------------------------------------------------
    def check_config(self, config: TuningConfig) -> CheckReport:
        """Static legality of one tuning point (SPM capacity, halo vs
        sub-domain, grid shape) via :func:`repro.analysis.check_config`.

        The tuner prunes on this *before* measuring or invoking the
        performance model, so illegal points never pollute the fit.
        """
        return check_config(
            self.stencil, config.tile, config.mpi_grid,
            self.global_shape, self.machine,
            exchange_mode=config.exchange_mode,
        )

    # -- search space -----------------------------------------------------------
    def axes(self) -> List[List]:
        ndim = len(self.global_shape)
        tile_axes: List[List] = []
        max_sub = [
            max(-(-s // g[d]) for g in self._grids)
            for d, s in enumerate(self.global_shape)
        ]
        for d in range(ndim):
            tile_axes.append(_pow2_candidates(max_sub[d]))
        return tile_axes + [self._grids, list(EXCHANGE_MODES)]

    @staticmethod
    def _to_config(*values) -> TuningConfig:
        *tile, grid, mode = values
        return TuningConfig(tuple(tile), tuple(grid), mode)

    # -- tuning ---------------------------------------------------------------------
    def tune(self, iterations: int = 20000, seed: int = 0,
             n_samples: int = 60) -> TuningResult:
        """Full pipeline: sample → fit → anneal → re-measure."""
        with span("autotune.tune", stencil=self.stencil.output.name,
                  nprocs=self.nprocs, iterations=iterations,
                  seed=seed) as sp:
            result = self._tune(iterations, seed, n_samples)
            sp.set(best_time_s=result.best_time,
                   improvement=result.improvement,
                   model_r2=result.model_r2)
        return result

    def _tune(self, iterations: int, seed: int,
              n_samples: int) -> TuningResult:
        rng = random.Random(seed)
        axes = self.axes()

        samples: List[TuningConfig] = []
        times: List[float] = []
        attempts = 0
        pruned_samples = 0
        emit("phase.enter", phase="autotune.sample", n_samples=n_samples)
        with span("autotune.sample_phase", n_samples=n_samples) as psp:
            while len(samples) < n_samples and attempts < 50 * n_samples:
                attempts += 1
                values = [ax[rng.randrange(len(ax))] for ax in axes]
                cfg = self._to_config(*values)
                if not self.check_config(cfg).ok:
                    pruned_samples += 1
                    counter("autotune.pruned_illegal")
                    continue
                with span("autotune.sample", tile=str(cfg.tile),
                          mpi_grid=str(cfg.mpi_grid),
                          mode=cfg.exchange_mode) as ssp:
                    t = self.measure(cfg)
                    ssp.set(measured_s=t, feasible=t != float("inf"))
                if t == float("inf"):
                    continue
                samples.append(cfg)
                times.append(t)
                observe("autotune.sample_time_s", t)
            psp.set(pruned=pruned_samples)
        emit("phase.exit", phase="autotune.sample",
             feasible=len(samples), pruned=pruned_samples)
        if len(samples) < len(PerformanceModel.FEATURE_NAMES):
            raise RuntimeError(
                "could not sample enough feasible configurations; the "
                "tuning space is over-constrained"
            )
        with span("autotune.fit", samples=len(samples)) as fsp:
            model = PerformanceModel(
                self.global_shape, self.radius, self.elem
            )
            model.fit(samples, times)
            r2 = model.score(samples, times)
            fsp.set(r2=r2)
        gauge("autotune.model_r2", r2)
        emit("autotune.model_fit", samples=len(samples), r2=r2)

        def energy(*values) -> float:
            cfg = self._to_config(*values)
            with span("autotune.trial", tile=str(cfg.tile),
                      mpi_grid=str(cfg.mpi_grid),
                      mode=cfg.exchange_mode) as tsp:
                measured_guard = self.measure(cfg)
                if measured_guard == float("inf"):
                    tsp.set(feasible=False)
                    return 1e9  # infeasible (SPM overflow)
                predicted = model.predict(cfg)
                tsp.set(predicted_s=predicted,
                        measured_s=measured_guard)
            return predicted

        def prune(*values):
            # illegal points never reach the performance model
            return self.check_config(self._to_config(*values)).errors

        # start the search from the best measured sample (keeps the
        # convergence trajectory finite and monotone from step 0)
        best_sample = samples[times.index(min(times))]
        start = []
        for d, ax in enumerate(axes[:-2]):
            value = best_sample.tile[d]
            start.append(ax.index(value) if value in ax else 0)
        start.append(axes[-2].index(best_sample.mpi_grid)
                     if best_sample.mpi_grid in axes[-2] else 0)
        start.append(axes[-1].index(best_sample.exchange_mode))
        emit("phase.enter", phase="autotune.anneal",
             iterations=iterations, seed=seed)
        result = simulated_annealing(
            axes, energy, iterations=iterations, seed=seed,
            initial_state=tuple(start), prune=prune,
        )
        emit("phase.exit", phase="autotune.anneal",
             best_energy=result.best_energy,
             converged_at=result.converged_at, pruned=result.pruned)
        with span("autotune.remeasure"):
            best_cfg = self._to_config(
                *(ax[idx] for ax, idx in zip(axes, result.best_state))
            )
            best_time = self.measure(best_cfg)
        initial_time = sum(times) / len(times)
        gauge("autotune.best_time_s", best_time)
        total_pruned = pruned_samples + result.pruned
        gauge("autotune.pruned_total", total_pruned)
        return TuningResult(
            best=best_cfg,
            best_time=best_time,
            initial_time=initial_time,
            model_r2=r2,
            annealing=result,
            samples=len(samples),
            pruned=total_pruned,
        )
