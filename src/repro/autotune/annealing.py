"""Simulated annealing over a discrete configuration space (Sec. 4.4).

Generic: the tuner supplies the candidate axes (each a finite ordered
list of values) and an objective; the annealer proposes single-axis
moves, accepts with the Metropolis criterion under geometric cooling,
and records the best-so-far trajectory — the Fig. 11 convergence curve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs import counter, gauge, span
from ..obs.events import emit

__all__ = ["AnnealingResult", "simulated_annealing"]


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    best_state: Tuple[int, ...]  # index per axis
    best_energy: float
    initial_energy: float
    iterations: int
    converged_at: int  # iteration of the last improvement
    history: List[Tuple[int, float]] = field(default_factory=list)
    pruned: int = 0  # proposals rejected by the legality pre-check

    @property
    def improvement(self) -> float:
        """initial / best (the Fig. 11 "improved by 3.28×" number)."""
        if self.best_energy <= 0:
            raise ValueError("non-positive best energy")
        return self.initial_energy / self.best_energy


def simulated_annealing(
    axes: Sequence[Sequence],
    energy: Callable[[Tuple, ...], float],
    iterations: int = 20000,
    seed: int = 0,
    t_initial: float = 1.0,
    t_final: float = 1e-4,
    history_stride: int = 100,
    initial_state: Optional[Tuple[int, ...]] = None,
    prune: Optional[Callable[..., object]] = None,
) -> AnnealingResult:
    """Minimise ``energy`` over the product of ``axes``.

    ``energy`` receives one value per axis.  Proposals move one axis to
    an adjacent index (locality helps on monotone-ish landscapes) or,
    with small probability, jump uniformly (escape valleys).
    ``initial_state`` (index per axis) overrides the random start —
    e.g. the best already-measured sample.

    ``prune``, when given, receives the same per-axis values as
    ``energy`` and returns a truthy value for *illegal* candidates
    (e.g. the static legality analyzer's error list); pruned proposals
    are rejected without evaluating ``energy`` and counted under the
    ``autotune.pruned_illegal`` metric and the result's ``pruned``
    field.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    for ax in axes:
        if len(ax) == 0:
            raise ValueError("every axis needs at least one candidate")
    rng = random.Random(seed)
    if initial_state is not None:
        state = tuple(initial_state)
        if len(state) != len(axes) or any(
            not 0 <= idx < len(ax) for idx, ax in zip(state, axes)
        ):
            raise ValueError("initial_state does not index the axes")
    else:
        state = tuple(rng.randrange(len(ax)) for ax in axes)

    def values_of(st: Tuple[int, ...]) -> Tuple:
        return tuple(ax[idx] for ax, idx in zip(axes, st))

    def value(st: Tuple[int, ...]) -> float:
        return energy(*values_of(st))

    pruned = 0
    if prune is not None and prune(*values_of(state)):
        raise ValueError(
            "initial_state is illegal under the supplied prune callback"
        )
    current_e = value(state)
    initial_e = current_e
    best_state, best_e = state, current_e
    converged_at = 0
    history: List[Tuple[int, float]] = [(0, best_e)]
    alpha = (t_final / t_initial) ** (1.0 / max(1, iterations - 1))
    temp = t_initial
    # normalise the acceptance scale to the initial energy so the
    # temperature schedule is unitless
    scale = abs(initial_e) if initial_e else 1.0

    with span("autotune.anneal", iterations=iterations,
              seed=seed) as sp:
        for it in range(1, iterations + 1):
            axis = rng.randrange(len(axes))
            n = len(axes[axis])
            if n > 1:
                if rng.random() < 0.1:
                    new_idx = rng.randrange(n)
                else:
                    new_idx = state[axis] + rng.choice((-1, 1))
                    new_idx = min(n - 1, max(0, new_idx))
            else:
                new_idx = 0
            if new_idx == state[axis]:
                temp *= alpha
                continue
            cand = tuple(
                new_idx if d == axis else s for d, s in enumerate(state)
            )
            if prune is not None and prune(*values_of(cand)):
                pruned += 1
                counter("autotune.pruned_illegal")
                counter("autotune.rejected_moves")
                temp *= alpha
                continue
            cand_e = value(cand)
            delta = (cand_e - current_e) / scale
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temp, 1e-12)
            ):
                state, current_e = cand, cand_e
                counter("autotune.accepted_moves")
                if cand_e < best_e:
                    best_state, best_e = cand, cand_e
                    converged_at = it
                    gauge("autotune.best_energy", best_e)
                    # events only at new bests: a 20k-iteration anneal
                    # must not write 20k narration lines
                    emit("autotune.new_best", iteration=it,
                         energy=best_e)
            else:
                counter("autotune.rejected_moves")
            if it % history_stride == 0:
                history.append((it, best_e))
            temp *= alpha
        sp.set(best_energy=best_e, initial_energy=initial_e,
               converged_at=converged_at, pruned=pruned)

    if history[-1][0] != iterations:
        history.append((iterations, best_e))
    return AnnealingResult(
        best_state=best_state,
        best_energy=best_e,
        initial_energy=initial_e,
        iterations=iterations,
        converged_at=converged_at,
        history=history,
        pruned=pruned,
    )
