"""MSC: automatic code generation and optimization of large-scale
stencil computation on many-core processors.

Reproduction of Li et al., ICPP 2021.  The package provides:

- the MSC embedded DSL (:mod:`repro.frontend`) with kernels, stencils
  with multiple time dependencies, and scheduling primitives;
- the single-level IR (:mod:`repro.ir`);
- schedule lowering with tile/reorder/parallel/cache primitives and the
  sliding time window (:mod:`repro.schedule`);
- AOT C code generation for CPU/Matrix (OpenMP) and Sunway (athread)
  plus the executable numpy backend (:mod:`repro.backend`);
- architectural machine models and simulators (:mod:`repro.machine`);
- the pluggable halo-exchange communication library (:mod:`repro.comm`)
  over a simulated MPI runtime (:mod:`repro.runtime`);
- the auto-tuner (:mod:`repro.autotune`), the baseline system models
  (:mod:`repro.baselines`) and the paper's evaluation harness
  (:mod:`repro.evalsuite`).

Quickstart::

    import numpy as np
    import repro as msc

    k, j, i = msc.indices("k j i")
    B = msc.DefTensor3D_TimeWin("B", 3, 1, msc.f64, 64, 64, 64)
    S = msc.Kernel("S", (k, j, i),
                   0.4 * B[k, j, i] + 0.1 * (B[k, j, i - 1] + B[k, j, i + 1]
                   + B[k - 1, j, i] + B[k + 1, j, i]
                   + B[k, j - 1, i] + B[k, j + 1, i]))
    t = msc.StencilProgram.t
    st = msc.StencilProgram(B, 0.6 * S[t - 1] + 0.4 * S[t - 2])
    st.set_initial([np.random.rand(64, 64, 64)] * 2)
    result = st.run(timesteps=10)
"""

from .ir.dtypes import DType, f32, f64, i32
from .frontend.dsl import (
    DefShapeMPI2D,
    DefShapeMPI3D,
    DefTensor1D,
    DefTensor2D,
    DefTensor2D_TimeWin,
    DefTensor3D,
    DefTensor3D_TimeWin,
    DefVar,
    Kernel,
    KernelHandle,
    Result,
    StencilProgram,
    indices,
)
from .frontend.stencils import (
    ALL_BENCHMARKS,
    BENCHMARK_NAMES,
    benchmark_by_name,
    build_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "DType", "f32", "f64", "i32",
    "DefShapeMPI2D", "DefShapeMPI3D",
    "DefTensor1D", "DefTensor2D", "DefTensor2D_TimeWin",
    "DefTensor3D", "DefTensor3D_TimeWin", "DefVar",
    "Kernel", "KernelHandle", "Result", "StencilProgram", "indices",
    "ALL_BENCHMARKS", "BENCHMARK_NAMES", "benchmark_by_name",
    "build_benchmark",
    "__version__",
]
