"""Structured diagnostics for the static schedule-legality pass.

Every problem the analyzer can detect is reported as a
:class:`Diagnostic` — a stable *code* (``SPM001``, ``RACE002``, ...), a
*severity* (``error`` stops codegen/simulation, ``warning`` is logged
and counted), a human-readable message, and the offending scheduling
primitive / kernel / axis when known.  :class:`CheckReport` collects
diagnostics across all kernels of a program so users get a complete
report instead of stopping at the first violation (mirroring
``ir.validate.ValidationError``).

This module is a dependency-free leaf: it imports nothing from the rest
of ``repro`` so that :mod:`repro.schedule` can attach diagnostics to its
own errors without creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "DIAGNOSTIC_CODES",
    "SEVERITIES",
    "CheckReport",
    "Diagnostic",
    "DiagnosticError",
]

#: allowed severity levels, most severe first
SEVERITIES = ("error", "warning")

#: registry of every code the analyzer can emit (code -> summary);
#: docs/ANALYSIS.md documents each in detail
DIAGNOSTIC_CODES = {
    "SCHED001": "schedule construction or lowering failed",
    "SHAPE001": "domain rank does not match the kernel's loop variables",
    "TILE001": "tile factor exceeds the axis extent",
    "TILE002": "tile factor does not divide the extent (remainder tiles)",
    "TILE003": "fewer tiles than parallel threads (idle cores)",
    "VEC001": "vectorized axis is not the innermost loop",
    "ORD001": "tile-inner axis reordered outside its tile-outer axis",
    "PAR001": "thread count exceeds the machine's cores per node",
    "RACE001": "parallel axis is a tile-inner loop (cross-core write race)",
    "RACE002": "write buffer staged outside the parallel loop "
               "(shared-buffer write race)",
    "SPM001": "SPM capacity overflow for the tile's cache buffers",
    "SPM002": "cache-less machine without explicit SPM staging",
    "SPM003": "SPM utilisation below the useful threshold",
    "CA001": "compute_at targets a non-tile-enumerating (inner) axis",
    "HALO001": "stencil radius exceeds the tensor's halo width",
    "HALO002": "per-rank sub-domain narrower than the halo",
    "MPI001": "invalid MPI process grid for the domain",
    "EXCH001": "exchange mode incompatible with the decomposition "
               "geometry",
    "EXCH002": "unknown halo-exchange mode",
    "IR001": "stencil IR validation issue",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    primitive: Optional[str] = None  # offending primitive, e.g. "tile"
    kernel: Optional[str] = None
    axis: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"invalid severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def format(self) -> str:
        """``error SPM001 [cache_read] (S_3d7pt/zo): message``."""
        where = ""
        if self.kernel or self.axis:
            inner = "/".join(p for p in (self.kernel, self.axis) if p)
            where = f" ({inner})"
        prim = f" [{self.primitive}]" if self.primitive else ""
        return f"{self.severity} {self.code}{prim}{where}: {self.message}"


@dataclass
class CheckReport:
    """All diagnostics collected by one run of the analyzer."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    # -- construction ------------------------------------------------------
    def add(self, code: str, severity: str, message: str,
            primitive: Optional[str] = None,
            kernel: Optional[str] = None,
            axis: Optional[str] = None) -> Diagnostic:
        diag = Diagnostic(code, severity, message,
                          primitive=primitive, kernel=kernel, axis=axis)
        self.diagnostics.append(diag)
        return diag

    def append(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "CheckReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostics were found."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- rendering ---------------------------------------------------------
    def format(self) -> str:
        """One line per diagnostic, errors first, plus a summary line."""
        ordered = self.errors + self.warnings
        lines = [d.format() for d in ordered]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`DiagnosticError` when any error was found."""
        if self.errors:
            raise DiagnosticError(self.errors)


class DiagnosticError(ValueError):
    """The analyzer found error-severity diagnostics.

    The message begins with ``illegal schedule:`` for continuity with
    the legacy :class:`~repro.schedule.legality.LegalityError` wording
    (CLI users and tests grep for that prefix).
    """

    def __init__(self, diagnostics: Iterable[Diagnostic]):
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)
        lines = "\n".join(f"- {d.format()}" for d in self.diagnostics)
        super().__init__(f"illegal schedule:\n{lines}")
