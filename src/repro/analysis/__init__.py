"""``repro.analysis`` — static schedule-legality analysis.

A whole-program pass over (Stencil IR, Schedules, MachineSpec, MPI
grid) that emits structured :class:`Diagnostic` records — stable codes,
severities, offending primitives — instead of scattered
``ScheduleError``s.  Wired into:

- the ``repro check`` CLI subcommand,
- the pre-codegen / pre-simulate / pre-run gates of
  :class:`~repro.frontend.dsl.StencilProgram` (``--no-check`` or
  ``check=False`` to skip),
- the autotuner, which prunes illegal configurations before invoking
  the performance model (counted under ``autotune.pruned_illegal``).

See ``docs/ANALYSIS.md`` for the code catalogue.
"""

from .checker import (
    SPM_UTILISATION_FLOOR,
    binding_footprints,
    check_config,
    check_decomposition,
    check_exchange_mode,
    check_kernel_schedule,
    check_program,
    check_stencil_ir,
    enforce,
)
from .diagnostics import (
    DIAGNOSTIC_CODES,
    SEVERITIES,
    CheckReport,
    Diagnostic,
    DiagnosticError,
)

__all__ = [
    "DIAGNOSTIC_CODES",
    "SEVERITIES",
    "SPM_UTILISATION_FLOOR",
    "CheckReport",
    "Diagnostic",
    "DiagnosticError",
    "binding_footprints",
    "check_config",
    "check_decomposition",
    "check_exchange_mode",
    "check_kernel_schedule",
    "check_program",
    "check_stencil_ir",
    "enforce",
]
