"""The static schedule-legality analyzer.

Validates a whole program — (Stencil IR, per-kernel Schedules,
MachineSpec, MPI grid) — *before* codegen, simulation or a distributed
run, collecting every violation as a structured
:class:`~repro.analysis.diagnostics.Diagnostic` instead of stopping at
the first scattered ``ScheduleError``:

- **SPM capacity** (``SPM001``): the actual tile+halo footprint of each
  ``cache_read``/``cache_write`` binding, summed, against the per-core
  scratchpad of a cache-less machine, with a per-binding breakdown;
- **write races** (``RACE001``/``RACE002``): ``parallel`` over a
  tile-inner axis, or an output buffer whose ``compute_at`` sits
  *outside* the parallel loop so every core would share one staged
  write buffer under the stencil's multi-time-window dependencies;
- **halo vs radius** (``HALO001``/``HALO002``): the stencil radius
  against the declared halo, and the per-rank sub-domain produced by
  :mod:`repro.comm.decomposition`'s balanced split against the halo;
- **tile hazards** (``TILE001``–``TILE003``): factor exceeding the
  extent, remainder tiles, fewer tiles than cores;
- **primitive interactions** (``CA001``/``ORD001``/``VEC001``):
  ``compute_at`` at a non-tile-enumerating axis, ``reorder`` placing a
  tile-inner axis outside its tile-outer axis, vectorizing a
  non-innermost loop.

The module deliberately avoids importing :mod:`repro.schedule` at the
top level (schedules and loop nests are duck-typed) so that
``repro.schedule`` itself can import :mod:`repro.analysis.diagnostics`
without a cycle.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.validate import stencil_issues
from ..obs import counter, span
from .diagnostics import CheckReport, Diagnostic

__all__ = [
    "SPM_UTILISATION_FLOOR",
    "binding_footprints",
    "check_config",
    "check_decomposition",
    "check_exchange_mode",
    "check_kernel_schedule",
    "check_program",
    "check_stencil_ir",
    "enforce",
]

#: below this fraction of the scratchpad, SPM003 flags the tile as
#: wastefully small (DMA startup dominates the transfer)
SPM_UTILISATION_FLOOR = 0.05

_IR_CATEGORY_CODES = {"halo": "HALO001"}


def _prod(values: Sequence[int]) -> int:
    n = 1
    for v in values:
        n *= int(v)
    return n


# ---------------------------------------------------------------------------
# SPM footprint model
# ---------------------------------------------------------------------------

def binding_footprints(kernel, tile_shape: Sequence[int],
                       bindings) -> List[Tuple[object, int]]:
    """Per-binding SPM bytes for one tile: ``[(binding, bytes), ...]``.

    Read buffers hold the tile plus the stencil halo on every side (the
    overlapped region that makes tiles independent, Sec. 4.3); write
    buffers hold the bare tile.
    """
    elem = max(
        (t.dtype.nbytes for t in kernel.input_tensors), default=8
    )
    rad = kernel.radius
    out: List[Tuple[object, int]] = []
    for b in bindings:
        if b.kind == "read":
            n = _prod(s + 2 * r for s, r in zip(tile_shape, rad))
        else:
            n = _prod(tile_shape)
        out.append((b, n * elem))
    return out


# ---------------------------------------------------------------------------
# per-kernel checks (structural + machine)
# ---------------------------------------------------------------------------

def check_kernel_schedule(schedule, nest, machine=None) -> CheckReport:
    """Analyze one lowered kernel schedule.

    ``schedule`` is a :class:`~repro.schedule.schedule.Schedule`,
    ``nest`` the :class:`~repro.schedule.loopnest.LoopNest` produced by
    ``schedule.lower``; ``machine`` (a MachineSpec) enables the
    machine-dependent checks.
    """
    report = CheckReport()
    kernel = schedule.kernel
    kname = kernel.name
    bindings = schedule.cache_bindings()
    positions = {name: i for i, name in enumerate(nest.axis_names)}

    # TILE002: remainder tiles (factor does not divide the extent)
    for var, factor in schedule.tile_factors.items():
        lo, hi = nest.domain[var]
        extent = hi - lo
        if factor <= extent and extent % factor:
            report.add(
                "TILE002", "warning",
                f"tile factor {factor} does not divide extent {extent} of "
                f"{var!r}; edge tiles are smaller (remainder hazard for "
                "fixed-size SPM buffers)",
                primitive="tile", kernel=kname, axis=var,
            )

    # ORD001: a tile-inner axis nested outside its tile-outer axis
    for ax in nest.axes:
        if ax.role != "inner":
            continue
        outer = next(
            (o for o in nest.axes
             if o.role == "outer" and o.parent == ax.parent), None
        )
        if outer is not None and positions[outer.name] > positions[ax.name]:
            severity = "error" if schedule.uses_spm else "warning"
            report.add(
                "ORD001", severity,
                f"reorder places tile-inner axis {ax.name!r} outside its "
                f"tile-outer axis {outer.name!r}; the nest no longer "
                "enumerates whole tiles"
                + (" (SPM staging would DMA the wrong block)"
                   if schedule.uses_spm else ""),
                primitive="reorder", kernel=kname, axis=ax.name,
            )

    # RACE001: parallel over a tile-inner axis
    if nest.parallel_axis is not None:
        ax = nest.axis(nest.parallel_axis)
        if ax.role == "inner":
            report.add(
                "RACE001", "error",
                f"parallel axis {ax.name!r} is a tile-inner loop; "
                "parallelise an outer loop so whole tiles map to cores",
                primitive="parallel", kernel=kname, axis=ax.name,
            )

    # RACE002: write buffer staged outside the parallel loop — all
    # cores would share one staged output block while the time window
    # still needs the previous planes intact (write race)
    if nest.parallel_axis is not None and nest.parallel_axis in positions:
        par_pos = positions[nest.parallel_axis]
        for b in bindings:
            if b.kind != "write" or b.compute_at is None:
                continue
            if b.compute_at in positions and (
                    positions[b.compute_at] < par_pos):
                report.add(
                    "RACE002", "error",
                    f"write buffer {b.buffer!r} is staged at "
                    f"{b.compute_at!r}, outside the parallel loop "
                    f"{nest.parallel_axis!r}; all {nest.nthreads} cores "
                    "would share one output buffer (write race across "
                    "the stencil's time window)",
                    primitive="compute_at", kernel=kname, axis=b.compute_at,
                )

    if machine is None:
        return report

    # PAR001: thread count vs cores.  On a cache-less target the CPE
    # grid is fixed hardware (error); a cached CPU merely timeshares
    # (warning).
    cores = machine.cores_per_node
    if nest.nthreads > cores:
        report.add(
            "PAR001", "error" if machine.cacheless else "warning",
            f"parallel({nest.parallel_axis}, {nest.nthreads}) exceeds the "
            f"{cores} cores of {machine.name}",
            primitive="parallel", kernel=kname, axis=nest.parallel_axis,
        )

    # TILE003: fewer tiles than threads — cores sit idle
    if nest.nthreads > 1 and nest.ntiles < nest.nthreads:
        report.add(
            "TILE003", "warning",
            f"only {nest.ntiles} tiles for {nest.nthreads} threads; "
            f"{nest.nthreads - nest.ntiles} cores are idle (enlarge the "
            "domain or shrink the tile factors)",
            primitive="parallel", kernel=kname, axis=nest.parallel_axis,
        )

    if machine.cacheless:
        if not bindings:
            report.add(
                "SPM002", "error",
                f"{machine.name} has no data cache: schedules must use "
                "cache_read/cache_write to stage tiles in SPM",
                primitive="cache_read", kernel=kname,
            )
        read_bound = {b.tensor for b in bindings if b.kind == "read"}
        missing = {t.name for t in kernel.input_tensors} - read_bound
        if bindings and missing:
            report.add(
                "SPM002", "error",
                f"inputs {sorted(missing)} are not cache_read-bound; on a "
                "cache-less target every input must be staged",
                primitive="cache_read", kernel=kname,
            )
        if bindings and not any(b.kind == "write" for b in bindings):
            report.add(
                "SPM002", "error",
                "no cache_write buffer; the output tile must be staged in "
                "SPM before the DMA put",
                primitive="cache_write", kernel=kname,
            )

        tile_shape = nest.tile_shape()
        footprints = binding_footprints(kernel, tile_shape, bindings)
        need = sum(nbytes for _, nbytes in footprints)
        if bindings and need > machine.spm_bytes:
            breakdown = ", ".join(
                f"{b.buffer}[{b.kind}]={nbytes} B"
                for b, nbytes in footprints
            )
            report.add(
                "SPM001", "error",
                f"tile {tuple(tile_shape)} needs {need} B of SPM but "
                f"{machine.name} provides {machine.spm_bytes} B per core "
                f"({breakdown}); shrink the tile factors",
                primitive="cache_read", kernel=kname,
            )
        elif bindings and 0 < need < SPM_UTILISATION_FLOOR * machine.spm_bytes:
            report.add(
                "SPM003", "warning",
                f"tile {tuple(tile_shape)} stages only {need} B "
                f"({100.0 * need / machine.spm_bytes:.1f}% of the "
                f"{machine.spm_bytes} B scratchpad); DMA startup will "
                "dominate — enlarge the tile factors",
                primitive="cache_read", kernel=kname,
            )

        outer_names = {ax.name for ax in nest.outer_axes}
        for b in bindings:
            if b.compute_at is not None and b.compute_at not in outer_names:
                report.add(
                    "CA001", "error",
                    f"compute_at({b.buffer}, {b.compute_at}) targets an "
                    "inner axis; DMA must be issued at a tile-enumerating "
                    "(outer) loop",
                    primitive="compute_at", kernel=kname, axis=b.compute_at,
                )

    return report


# ---------------------------------------------------------------------------
# IR + decomposition checks
# ---------------------------------------------------------------------------

def check_stencil_ir(stencil) -> CheckReport:
    """IR-level problems as diagnostics (``HALO001`` / ``IR001``)."""
    report = CheckReport()
    for category, message in stencil_issues(stencil):
        code = _IR_CATEGORY_CODES.get(category, "IR001")
        report.add(code, "error", message)
    return report


def check_decomposition(stencil, global_shape: Sequence[int],
                        grid: Sequence[int]) -> CheckReport:
    """MPI-grid legality (``MPI001``) and halo coverage (``HALO002``).

    Mirrors :func:`repro.comm.decomposition.decompose`'s balanced split:
    the narrowest rank along a dimension gets ``extent // g`` points,
    which must cover the output halo for the exchange to be well-formed.
    """
    report = CheckReport()
    global_shape = tuple(int(s) for s in global_shape)
    grid = tuple(int(g) for g in grid)
    if len(grid) != len(global_shape):
        report.add(
            "MPI001", "error",
            f"grid rank {len(grid)} does not match domain rank "
            f"{len(global_shape)}",
            primitive="set_mpi_grid",
        )
        return report
    for d, (s, g) in enumerate(zip(global_shape, grid)):
        if g < 1:
            report.add(
                "MPI001", "error",
                f"process grid extents must be >= 1, got {g} in "
                f"dimension {d}",
                primitive="set_mpi_grid",
            )
        elif g > s:
            report.add(
                "MPI001", "error",
                f"cannot split extent {s} over {g} processes "
                f"(dimension {d})",
                primitive="set_mpi_grid",
            )
    if not report.ok:
        return report

    halo = stencil.output.halo
    for d, (s, g, h) in enumerate(zip(global_shape, grid, halo)):
        narrowest = s // g  # decomposition's balanced split
        if g > 1 and narrowest < h:
            report.add(
                "HALO002", "error",
                f"dimension {d}: sub-domain extent {narrowest} "
                f"(= {s} // {g}) is narrower than halo {h}; use a "
                "smaller MPI grid",
                primitive="set_mpi_grid",
            )
    return report


def check_exchange_mode(stencil, mode: str, grid: Sequence[int],
                        global_shape: Sequence[int]) -> CheckReport:
    """Exchange-mode legality (``EXCH001``/``EXCH002``).

    ``basic`` and ``diag`` are legal wherever the decomposition itself
    is (``HALO002`` covers that); ``overlap`` additionally needs the
    CORE/OWNED split to be well-formed: the halo must cover the stencil
    radius on every split dimension, and the narrowest sub-domain must
    be at least two halo widths wide so a non-empty CORE block exists
    to hide the communication behind.
    """
    from ..comm.exchange import EXCHANGE_MODES

    report = CheckReport()
    if mode not in EXCHANGE_MODES:
        report.add(
            "EXCH002", "error",
            f"unknown exchange mode {mode!r}; available: "
            f"{list(EXCHANGE_MODES)}",
            primitive="exchange_mode",
        )
        return report
    if mode != "overlap":
        return report
    halo = stencil.output.halo
    radius = stencil.radius
    grid = tuple(int(g) for g in grid)
    global_shape = tuple(int(s) for s in global_shape)
    for d, (s, g, h, r) in enumerate(
            zip(global_shape, grid, halo, radius)):
        if g <= 1:
            continue  # unsplit dimension: no ghosts in flight
        if h < r:
            report.add(
                "EXCH001", "error",
                f"dimension {d}: overlap mode needs halo >= stencil "
                f"radius on split regions, got halo {h} < radius {r}",
                primitive="exchange_mode",
            )
        elif h > 0 and s // g <= 2 * h:
            # the CORE block (interior minus one halo width per side)
            # is empty unless the narrowest sub-domain exceeds 2*h
            report.add(
                "EXCH001", "error",
                f"dimension {d}: sub-domain extent {s // g} "
                f"(= {s} // {g}) leaves no CORE block to overlap "
                f"(needs > {2 * h}); use basic/diag or a smaller "
                "MPI grid",
                primitive="exchange_mode",
            )
    return report


# ---------------------------------------------------------------------------
# whole-program entry point
# ---------------------------------------------------------------------------

def check_program(stencil, schedules: Optional[Dict[str, object]] = None,
                  machine=None, mpi_grid: Optional[Sequence[int]] = None,
                  shape: Optional[Sequence[int]] = None) -> CheckReport:
    """Statically analyze a whole stencil program.

    Parameters
    ----------
    stencil:
        The IR :class:`~repro.ir.stencil.Stencil`.
    schedules:
        ``{kernel name: Schedule}``; kernels without an entry are
        checked under the default (untransformed) schedule.
    machine:
        Optional MachineSpec enabling the machine-dependent checks.
    mpi_grid:
        Optional process grid enabling the decomposition checks.
    shape:
        Domain shape to lower against (default: the output tensor's).
    """
    from ..schedule.schedule import Schedule, ScheduleError

    schedules = dict(schedules or {})
    shape = tuple(shape) if shape is not None else stencil.output.shape
    with span("analysis.check", stencil=stencil.output.name,
              machine=getattr(machine, "name", None) or "-",
              kernels=len(stencil.kernels)) as sp:
        report = check_stencil_ir(stencil)
        if mpi_grid is not None:
            report.extend(check_decomposition(stencil, shape, mpi_grid))
        for kernel in stencil.kernels:
            sched = schedules.get(kernel.name) or Schedule(kernel)
            try:
                nest = sched.lower(shape)
            except ScheduleError as exc:
                diag = getattr(exc, "diagnostic", None)
                if diag is None:
                    diag = Diagnostic("SCHED001", "error", str(exc),
                                      kernel=kernel.name)
                report.append(diag)
                continue
            report.extend(check_kernel_schedule(sched, nest, machine))
        sp.set(errors=len(report.errors), warnings=len(report.warnings))
        counter("analysis.checks")
        if report.errors:
            counter("analysis.errors", len(report.errors))
        if report.warnings:
            counter("analysis.warnings", len(report.warnings))
    return report


def check_config(stencil, tile: Sequence[int], mpi_grid: Sequence[int],
                 global_shape: Sequence[int], machine,
                 exchange_mode: Optional[str] = None) -> CheckReport:
    """Fast legality check of one autotuner point (no Schedule objects).

    Mirrors the tuner's staging model — one halo-padded read block plus
    one interior write block per sweep — so every configuration pruned
    here is exactly one the measured objective would reject, plus the
    decomposition checks the objective cannot see.  When
    ``exchange_mode`` is given the exchange-mode legality rules
    (``EXCH001``/``EXCH002``) are applied as well.
    """
    report = check_decomposition(stencil, global_shape, mpi_grid)
    if not report.ok:
        return report
    if exchange_mode is not None:
        report.extend(check_exchange_mode(
            stencil, exchange_mode, mpi_grid, global_shape
        ))
        if not report.ok:
            return report
    if machine is not None and machine.cacheless:
        sub = tuple(
            -(-int(s) // int(g)) for s, g in zip(global_shape, mpi_grid)
        )
        tile_c = tuple(min(int(t), s) for t, s in zip(tile, sub))
        elem = stencil.output.dtype.nbytes
        padded = _prod(
            t + 2 * r for t, r in zip(tile_c, stencil.radius)
        )
        interior = _prod(tile_c)
        need = (padded + interior) * elem
        if need > machine.spm_bytes:
            report.add(
                "SPM001", "error",
                f"tile {tuple(tile_c)} needs {need} B of SPM but "
                f"{machine.name} provides {machine.spm_bytes} B per core; "
                "shrink the tile factors",
                primitive="tile",
            )
    return report


# ---------------------------------------------------------------------------
# gate helper
# ---------------------------------------------------------------------------

def enforce(report: CheckReport, where: str = "", stream=None) -> None:
    """Apply a report at a pipeline gate.

    Warnings are logged to ``stream`` (default stderr) and counted
    under ``analysis.gate_warnings``; any error raises
    :class:`~repro.analysis.diagnostics.DiagnosticError`.
    """
    if stream is None:
        stream = sys.stderr
    prefix = f"{where}: " if where else ""
    for w in report.warnings:
        print(f"repro-check {prefix}{w.format()}", file=stream)
    if report.warnings:
        counter("analysis.gate_warnings", len(report.warnings))
    if report.errors:
        counter("analysis.gate_errors", len(report.errors))
        report.raise_if_errors()
