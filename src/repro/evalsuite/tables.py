"""Row/series printers: render harness output the way the paper does.

Every ``benchmarks/`` target funnels through these so the printed
reproduction artefacts have one consistent format (and the tests can
sanity-check the strings).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def format_table(rows: List[Dict], columns: Sequence[str],
                 title: str = "", floatfmt: str = "{:.3g}") -> str:
    """Fixed-width text table over a list of row dicts."""
    if not rows:
        raise ValueError("no rows to format")
    header = list(columns)
    rendered: List[List[str]] = [header]
    for row in rows:
        line = []
        for col in columns:
            val = row[col]
            if isinstance(val, float):
                line.append(floatfmt.format(val))
            else:
                line.append(str(val))
        rendered.append(line)
    widths = [
        max(len(r[c]) for r in rendered) for c in range(len(header))
    ]
    out = []
    if title:
        out.append(title)
    for idx, line in enumerate(rendered):
        out.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def format_series(series: Dict[str, List], x_label: str,
                  y_label: str, title: str = "") -> str:
    """Figure-style output: one line block per curve."""
    out = []
    if title:
        out.append(title)
    for name, points in series.items():
        out.append(f"[{name}]")
        for x, y in points:
            out.append(f"  {x_label}={x}  {y_label}={y:.4g}")
    return "\n".join(out)


def print_table(rows: List[Dict], columns: Sequence[str],
                title: str = "") -> None:
    print(format_table(rows, columns, title))


def print_series(series: Dict[str, List], x_label: str, y_label: str,
                 title: str = "") -> None:
    print(format_series(series, x_label, y_label, title))
