"""Evaluation suite: paper-table configurations, the experiment
harness (one entry per table/figure of Sec. 5), and row printers."""

from .configs import (
    PHYSIS_GLOBAL_2D,
    PHYSIS_GLOBAL_3D,
    TABLE5,
    TABLE7_SUNWAY,
    TABLE7_TIANHE3,
    TABLE8,
    Table5Row,
    Table7Row,
    Table8Row,
    table5_row,
)
from .harness import (
    build_with_schedule,
    fig7_rows,
    fig8_rows,
    fig9_points,
    fig10_curves,
    fig11_runs,
    fig12_rows,
    fig13_rows,
    fig14_rows,
    geomean,
    table3_rows,
    table4_rows,
    table6_rows,
)
from .tables import format_series, format_table, print_series, print_table
from .ascii_plot import line_chart
from .verify import PathResult, relative_error, verify_benchmark

__all__ = [
    "PHYSIS_GLOBAL_2D", "PHYSIS_GLOBAL_3D",
    "TABLE5", "TABLE7_SUNWAY", "TABLE7_TIANHE3", "TABLE8",
    "Table5Row", "Table7Row", "Table8Row", "table5_row",
    "build_with_schedule",
    "fig7_rows", "fig8_rows", "fig9_points", "fig10_curves",
    "fig11_runs", "fig12_rows", "fig13_rows", "fig14_rows",
    "geomean", "table3_rows", "table4_rows", "table6_rows",
    "format_series", "format_table", "print_series", "print_table",
    "line_chart",
    "PathResult", "relative_error", "verify_benchmark",
]
