"""Experiment harness: one function per table/figure of Sec. 5.

Each function returns plain data (lists of row dicts or series) that
the ``benchmarks/`` targets print and the test suite asserts on — who
wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..autotune.tuner import AutoTuner, TuningResult
from ..baselines.halide import simulate_halide_aot, simulate_halide_jit
from ..baselines.loc import loc_comparison
from ..baselines.openacc import simulate_openacc_sunway
from ..baselines.openmp import simulate_openmp_matrix
from ..baselines.patus import simulate_patus
from ..baselines.physis import simulate_msc_hybrid, simulate_physis
from ..frontend.stencils import ALL_BENCHMARKS, benchmark_by_name
from ..ir.analysis import characterize_kernel, stencil_flops_per_point
from ..ir.dtypes import DType, f32, f64
from ..machine.matrix_sim import CacheMachineSimulator
from ..machine.roofline import Roofline, RooflinePoint
from ..machine.spec import (
    CPU_E5_2680V4,
    MATRIX_SN,
    SUNWAY_CG,
    SUNWAY_NETWORK,
    TIANHE3_NETWORK,
)
from ..machine.sunway_sim import SunwaySimulator
from ..runtime.network import ScalePoint, scaling_run
from .configs import (
    PHYSIS_GLOBAL_2D,
    PHYSIS_GLOBAL_3D,
    TABLE7_SUNWAY,
    TABLE7_TIANHE3,
    TABLE8,
    table5_row,
)

__all__ = [
    "build_with_schedule",
    "table3_rows",
    "table4_rows",
    "table6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_points",
    "fig10_curves",
    "fig11_runs",
    "fig12_rows",
    "fig13_rows",
    "fig14_rows",
    "geomean",
]

_AXIS_NAMES_2D = ("xo", "xi", "yo", "yi")
_AXIS_NAMES_3D = ("xo", "xi", "yo", "yi", "zo", "zi")


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    if not values:
        raise ValueError("geomean of no values")
    prod = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"non-positive speedup {v}")
        prod *= v
    return prod ** (1.0 / len(values))


def build_with_schedule(name: str, target: str, dtype: DType = f64,
                        grid: Optional[Sequence[int]] = None):
    """Benchmark program with its Table 5 schedule applied.

    ``target``: "sunway" applies the Sunway tile plus cache/DMA
    primitives and 64 CPEs; "matrix" the Matrix tile with 32 threads;
    "cpu" the Matrix tile with 28 threads (the Sec. 5.5 setting).
    """
    bench = benchmark_by_name(name)
    row = table5_row(name)
    prog, handle = bench.build(grid=grid or row.grid, dtype=dtype)
    tile = row.sunway_tile if target == "sunway" else row.matrix_tile
    shape = prog.ir.output.shape
    tile = tuple(min(t, s) for t, s in zip(tile, shape))
    names = _AXIS_NAMES_2D if bench.ndim == 2 else _AXIS_NAMES_3D
    handle.tile(*tile, *names)
    handle.reorder(*row.reorder)
    if target == "sunway":
        handle.cache_read(prog.ir.output, "buffer_read", "global")
        handle.cache_write("buffer_write", "global")
        anchor = row.reorder[bench.ndim - 1]  # innermost outer axis
        handle.compute_at("buffer_read", anchor)
        handle.compute_at("buffer_write", anchor)
        handle.parallel("xo", SUNWAY_CG.cores_per_node)
    elif target == "matrix":
        handle.parallel("xo", MATRIX_SN.cores_per_node)
    elif target == "cpu":
        handle.parallel("xo", CPU_E5_2680V4.cores_per_node)
    else:
        raise ValueError(f"unknown target {target!r}")
    return prog, handle


# -- Table 3: platform configurations -------------------------------------------
def table3_rows() -> List[Dict]:
    return [
        {
            "platform": "Sunway TaihuLight",
            "processor": "SW26010 (65 cores*4)",
            "model": SUNWAY_CG,
        },
        {
            "platform": "Tianhe-3 Prototype",
            "processor": "MT2000+ (32 cores)",
            "model": MATRIX_SN,
        },
        {
            "platform": "Local CPU Server",
            "processor": "E5-2680v4*2 (14 cores*2)",
            "model": CPU_E5_2680V4,
        },
    ]


# -- Table 4: benchmark characteristics -----------------------------------------
def table4_rows() -> List[Dict]:
    rows = []
    for bench in ALL_BENCHMARKS:
        prog, handle = bench.build(
            grid=tuple(4 * (2 * bench.radius + 1) for _ in range(bench.ndim))
        )
        ch = characterize_kernel(handle.kernel, prog.ir.time_dependencies)
        rows.append({
            "benchmark": bench.name,
            "read_bytes": ch.read_bytes,
            "write_bytes": ch.write_bytes,
            "ops": ch.ops,
            "time_dep": ch.time_dependencies,
            "paper_read": bench.paper_read_bytes,
            "paper_write": bench.paper_write_bytes,
            "paper_ops": bench.paper_ops,
            "paper_time_dep": bench.time_dependencies,
        })
    return rows


# -- Table 6: LoC comparison ------------------------------------------------------
def table6_rows() -> List[Dict]:
    rows = []
    for bench in ALL_BENCHMARKS:
        locs = loc_comparison(bench)
        rows.append({"benchmark": bench.name, **locs})
    return rows


# -- Fig. 7: MSC vs OpenACC on a Sunway CG ---------------------------------------
def fig7_rows(precision: str = "fp64") -> List[Dict]:
    dtype = f32 if precision == "fp32" else f64
    rows = []
    sim = SunwaySimulator(SUNWAY_CG)
    for bench in ALL_BENCHMARKS:
        prog, handle = build_with_schedule(bench.name, "sunway", dtype)
        msc = sim.run(prog.ir, handle.schedule, timesteps=1)
        acc = simulate_openacc_sunway(prog.ir, handle.schedule, timesteps=1)
        rows.append({
            "benchmark": bench.name,
            "msc_s": msc.step_s,
            "openacc_s": acc.step_s,
            "speedup": acc.step_s / msc.step_s,
            "msc_gflops": msc.gflops,
            "spm_utilisation": msc.details["spm_utilisation"],
            "tiles_per_cpe": msc.details["tiles_per_cpe"],
        })
    return rows


# -- Fig. 8: MSC vs manual OpenMP on Matrix ---------------------------------------
def fig8_rows(precision: str = "fp64") -> List[Dict]:
    dtype = f32 if precision == "fp32" else f64
    rows = []
    sim = CacheMachineSimulator(MATRIX_SN)
    for bench in ALL_BENCHMARKS:
        prog, handle = build_with_schedule(bench.name, "matrix", dtype)
        msc = sim.run(prog.ir, handle.schedule, timesteps=1)
        omp = simulate_openmp_matrix(prog.ir, handle.schedule, timesteps=1)
        rows.append({
            "benchmark": bench.name,
            "msc_s": msc.step_s,
            "openmp_s": omp.step_s,
            "speedup": omp.step_s / msc.step_s,
            "msc_gflops": msc.gflops,
        })
    return rows


# -- Fig. 9: roofline ---------------------------------------------------------------
def fig9_points(machine_name: str = "sunway",
                precision: str = "fp64") -> List[RooflinePoint]:
    dtype = f32 if precision == "fp32" else f64
    if machine_name == "sunway":
        machine = SUNWAY_CG
        sim = SunwaySimulator(machine)
        target = "sunway"
    else:
        machine = MATRIX_SN
        sim = CacheMachineSimulator(machine)
        target = "matrix"
    roof = Roofline(machine, precision)
    points = []
    for bench in ALL_BENCHMARKS:
        prog, handle = build_with_schedule(bench.name, target, dtype)
        report = sim.run(prog.ir, handle.schedule, timesteps=1)
        # operational intensity of the full stencil step: all kernel
        # applications' footprints plus the combine
        flops_pp = stencil_flops_per_point(prog.ir)
        elem = dtype.nbytes
        napply = len(prog.ir.applications)
        # Sunway DMA puts do not read-allocate (write costs 1 element);
        # cache machines write-allocate (read + write the output line)
        write_cost = 1.0 if machine.cacheless else 2.0
        bytes_pp = elem * (napply + write_cost)
        oi = flops_pp / bytes_pp
        points.append(roof.place(bench.name, oi, report.gflops))
    return points


# -- Fig. 10 (+ Table 7): scalability ------------------------------------------------
def fig10_curves(platform: str, mode: str,
                 benchmarks: Optional[Sequence[str]] = None
                 ) -> Dict[str, List[ScalePoint]]:
    """Scalability curves: platform in {sunway, tianhe3}, mode in
    {strong, weak}.  Returns one curve (list of ScalePoints in process
    order) per benchmark."""
    if platform == "sunway":
        table, machine, network = (
            TABLE7_SUNWAY, SUNWAY_CG, SUNWAY_NETWORK
        )
    elif platform == "tianhe3":
        table, machine, network = (
            TABLE7_TIANHE3, MATRIX_SN, TIANHE3_NETWORK
        )
    else:
        raise ValueError(f"unknown platform {platform!r}")
    if mode not in ("strong", "weak"):
        raise ValueError(f"mode must be strong/weak, got {mode!r}")
    names = benchmarks or [b.name for b in ALL_BENCHMARKS]
    curves: Dict[str, List[ScalePoint]] = {}
    for name in names:
        bench = benchmark_by_name(name)
        rows = [r for r in table if r.ndim == bench.ndim]
        prog, handle = bench.build(
            grid=tuple(4 * (2 * bench.radius + 1) for _ in range(bench.ndim))
        )
        pts = []
        for row in rows:
            sub = (
                row.strong_sub_grid if mode == "strong"
                else row.weak_sub_grid
            )
            pts.append(
                scaling_run(prog.ir, sub, row.mpi_grid, machine, network)
            )
        curves[name] = pts
    return curves


# -- Fig. 11: auto-tuning ---------------------------------------------------------------
def fig11_runs(seeds: Sequence[int] = (0, 1),
               iterations: int = 20000) -> List[TuningResult]:
    """Two auto-tuning runs of 3d7pt_star at 8192×128×128 on 128 CGs."""
    bench = benchmark_by_name("3d7pt_star")
    shape = (8192, 128, 128)
    prog, handle = bench.build(grid=shape)
    results = []
    for seed in seeds:
        tuner = AutoTuner(
            prog.ir, shape, nprocs=128,
            machine=SUNWAY_CG, network=SUNWAY_NETWORK,
        )
        results.append(tuner.tune(iterations=iterations, seed=seed))
    return results


# -- Figs. 12/13: Halide and Patus on CPU ----------------------------------------------
def fig12_rows() -> List[Dict]:
    rows = []
    sim = CacheMachineSimulator(CPU_E5_2680V4)
    for bench in ALL_BENCHMARKS:
        prog, handle = build_with_schedule(bench.name, "cpu")
        # the paper runs 100 timesteps per measurement
        steps = 100
        msc = sim.run(prog.ir, handle.schedule, timesteps=steps)
        aot = simulate_halide_aot(prog.ir, handle.schedule, timesteps=steps)
        jit = simulate_halide_jit(prog.ir, handle.schedule, timesteps=steps)
        rows.append({
            "benchmark": bench.name,
            "msc_s": msc.total_s,
            "halide_aot_s": aot.total_s,
            "halide_jit_s": jit.total_s,
            "speedup_msc": jit.total_s / msc.total_s,
            "speedup_aot": jit.total_s / aot.total_s,
            "msc_vs_aot": aot.total_s / msc.total_s,
        })
    return rows


def fig13_rows() -> List[Dict]:
    rows = []
    sim = CacheMachineSimulator(CPU_E5_2680V4)
    for bench in ALL_BENCHMARKS:
        prog, handle = build_with_schedule(bench.name, "cpu")
        msc = sim.run(prog.ir, handle.schedule, timesteps=1)
        patus = simulate_patus(prog.ir, handle.schedule, timesteps=1)
        rows.append({
            "benchmark": bench.name,
            "msc_s": msc.step_s,
            "patus_s": patus.step_s,
            "speedup": patus.step_s / msc.step_s,
        })
    return rows


# -- Fig. 14 (+ Table 8): Physis on CPU ---------------------------------------------------
def fig14_rows() -> List[Dict]:
    rows = []
    for bench in ALL_BENCHMARKS:
        global_shape = (
            PHYSIS_GLOBAL_2D if bench.ndim == 2 else PHYSIS_GLOBAL_3D
        )
        prog, handle = bench.build(
            grid=tuple(4 * (2 * bench.radius + 1) for _ in range(bench.ndim))
        )
        for row in (r for r in TABLE8 if r.ndim == bench.ndim):
            msc = simulate_msc_hybrid(
                prog.ir, global_shape, row.mpi_grid, row.omp_threads
            )
            # Physis: MPI-everywhere on all 28 cores
            physis_grid = (
                (4, 7) if bench.ndim == 2 else (2, 2, 7)
            )
            phys = simulate_physis(prog.ir, global_shape, physis_grid)
            rows.append({
                "benchmark": bench.name,
                "mpi_grid": row.mpi_grid,
                "omp_threads": row.omp_threads,
                "msc_s": msc.step_s,
                "physis_s": phys.step_s,
                "speedup": phys.step_s / msc.step_s,
            })
    return rows
