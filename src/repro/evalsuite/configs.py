"""Experiment configurations from the paper's tables.

- Table 5: per-benchmark grid sizes, tile sizes and reorder rules for
  single-processor runs on Sunway / Matrix;
- Table 7: the strong/weak scalability configurations on Sunway
  TaihuLight (left) and the prototype Tianhe-3 (right);
- Table 8: the MSC configurations for the Physis comparison on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "Table5Row",
    "TABLE5",
    "table5_row",
    "Table7Row",
    "TABLE7_SUNWAY",
    "TABLE7_TIANHE3",
    "Table8Row",
    "TABLE8",
]


@dataclass(frozen=True)
class Table5Row:
    """Parameter settings for one benchmark (Table 5)."""

    benchmark: str
    grid: Tuple[int, ...]
    sunway_tile: Tuple[int, ...]
    matrix_tile: Tuple[int, ...]
    reorder: Tuple[str, ...]


_REORDER_2D = ("xo", "yo", "xi", "yi")
_REORDER_3D = ("xo", "yo", "zo", "xi", "yi", "zi")

TABLE5: Tuple[Table5Row, ...] = (
    Table5Row("2d9pt_star", (4096, 4096), (32, 64), (2, 2048), _REORDER_2D),
    Table5Row("2d9pt_box", (4096, 4096), (32, 64), (2, 2048), _REORDER_2D),
    Table5Row("2d121pt_box", (4096, 4096), (16, 32), (2, 2048), _REORDER_2D),
    Table5Row("2d169pt_box", (4096, 4096), (16, 32), (2, 2048), _REORDER_2D),
    Table5Row("3d7pt_star", (256, 256, 256), (2, 8, 64), (2, 8, 256),
              _REORDER_3D),
    Table5Row("3d13pt_star", (256, 256, 256), (2, 8, 64), (2, 8, 256),
              _REORDER_3D),
    Table5Row("3d25pt_star", (256, 256, 256), (2, 4, 32), (2, 8, 256),
              _REORDER_3D),
    Table5Row("3d31pt_star", (256, 256, 256), (2, 4, 32), (2, 8, 256),
              _REORDER_3D),
)

_TABLE5_BY_NAME = {r.benchmark: r for r in TABLE5}


def table5_row(benchmark: str) -> Table5Row:
    try:
        return _TABLE5_BY_NAME[benchmark]
    except KeyError:
        raise KeyError(
            f"no Table 5 row for {benchmark!r}; known: "
            f"{sorted(_TABLE5_BY_NAME)}"
        ) from None


@dataclass(frozen=True)
class Table7Row:
    """One scalability configuration (Table 7)."""

    ndim: int
    weak_sub_grid: Tuple[int, ...]  # per-process grid, weak scaling
    strong_sub_grid: Tuple[int, ...]  # per-process grid, strong scaling
    mpi_grid: Tuple[int, ...]
    processes: int


# Sunway TaihuLight: 128 → 1024 CGs (Table 7 left of the separator)
TABLE7_SUNWAY: Tuple[Table7Row, ...] = (
    Table7Row(2, (4096, 4096), (4096, 4096), (16, 8), 128),
    Table7Row(2, (4096, 4096), (4096, 2048), (16, 16), 256),
    Table7Row(2, (4096, 4096), (2048, 2048), (32, 16), 512),
    Table7Row(2, (4096, 4096), (2048, 1024), (32, 32), 1024),
    Table7Row(3, (256, 256, 256), (256, 256, 256), (8, 4, 4), 128),
    Table7Row(3, (256, 256, 256), (256, 256, 128), (8, 8, 4), 256),
    Table7Row(3, (256, 256, 256), (256, 128, 128), (8, 8, 8), 512),
    Table7Row(3, (256, 256, 256), (128, 128, 128), (16, 8, 8), 1024),
)

# Prototype Tianhe-3: 32 → 256 Matrix supernodes (Table 7 right)
TABLE7_TIANHE3: Tuple[Table7Row, ...] = (
    Table7Row(2, (4096, 4096), (4096, 4096), (8, 4), 32),
    Table7Row(2, (4096, 4096), (4096, 2048), (8, 8), 64),
    Table7Row(2, (4096, 4096), (2048, 2048), (16, 8), 128),
    Table7Row(2, (4096, 4096), (2048, 1024), (16, 16), 256),
    Table7Row(3, (256, 256, 256), (256, 256, 256), (4, 4, 2), 32),
    Table7Row(3, (256, 256, 256), (256, 256, 128), (4, 4, 4), 64),
    Table7Row(3, (256, 256, 256), (256, 128, 128), (4, 8, 4), 128),
    Table7Row(3, (256, 256, 256), (128, 128, 128), (8, 8, 4), 256),
)


@dataclass(frozen=True)
class Table8Row:
    """MSC hybrid configuration for the Physis comparison (Table 8)."""

    ndim: int
    sub_grid: Tuple[int, ...]
    mpi_grid: Tuple[int, ...]
    mpi_processes: int
    omp_threads: int


TABLE8: Tuple[Table8Row, ...] = (
    Table8Row(2, (4096, 4096), (4, 7), 28, 1),
    Table8Row(2, (8192, 4096), (2, 7), 14, 2),
    Table8Row(2, (16384, 4096), (1, 7), 7, 4),
    Table8Row(3, (256, 256, 256), (2, 2, 7), 28, 1),
    Table8Row(3, (512, 256, 256), (1, 2, 7), 14, 2),
    Table8Row(3, (512, 512, 256), (1, 1, 7), 7, 4),
)

#: global grids of the Physis comparison (Sec. 5.5)
PHYSIS_GLOBAL_2D: Tuple[int, int] = (16384, 28672)
PHYSIS_GLOBAL_3D: Tuple[int, int, int] = (512, 512, 1792)
