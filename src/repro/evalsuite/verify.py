"""Correctness verification harness (the Sec. 5.1 methodology).

"To ensure the correctness of MSC, we measure the relative errors
between the generated codes and the serial codes" — this module runs a
benchmark through every execution path of the reproduction and reports
each path's maximum relative error against the serial reference:

- the tiled scheduled executor (the structure the C backend emits),
- the distributed executor over the simulated MPI runtime,
- the compiled generated C program (when a C compiler is available),
- overlapped temporal tiling.

Exposed on the CLI as ``python -m repro verify <benchmark>``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..backend import native
from ..backend.numpy_backend import ScheduledExecutor, reference_run
from ..backend.temporal_exec import TemporalTilingExecutor
from ..frontend.stencils import benchmark_by_name
from ..ir.dtypes import DType, f64
from ..runtime.executor import distributed_run
from ..schedule.schedule import Schedule

__all__ = ["PathResult", "verify_benchmark", "relative_error"]

_GRIDS = {2: (24, 20), 3: (12, 12, 12)}
_MPI = {2: (2, 2), 3: (2, 1, 2)}


def relative_error(got: np.ndarray, ref: np.ndarray) -> float:
    """Max elementwise relative error, guarding tiny denominators."""
    denom = np.maximum(np.abs(ref), 1e-300)
    return float(np.max(np.abs(got - ref) / denom))


@dataclass(frozen=True)
class PathResult:
    """One execution path's verification outcome."""

    path: str
    rel_error: float
    tolerance: float
    ran: bool = True
    note: str = ""

    @property
    def passed(self) -> bool:
        return (not self.ran) or self.rel_error < self.tolerance


def _tiled_schedule(stencil) -> Dict[str, Schedule]:
    kern = stencil.kernels[0]
    shape = stencil.output.shape
    factors = tuple(max(2, s // 3) for s in shape)
    names = (
        ("xo", "xi", "yo", "yi") if len(shape) == 2
        else ("xo", "xi", "yo", "yi", "zo", "zi")
    )
    return {kern.name: Schedule(kern).tile(*factors, *names)}


def _compile_and_run(files: Mapping[str, str], binary: str,
                     init_blob: np.ndarray, timesteps: int,
                     out_dtype, out_shape: Sequence[int],
                     flags: Sequence[str],
                     compile_files: Optional[Sequence[str]] = None
                     ) -> Tuple[Optional[np.ndarray], str]:
    """Build one generated bundle through the shared artifact cache and
    execute it under the run timeout.

    The single compile/run path for every verify flavour (plain C, MPI
    stub, athread stub): ``repro verify`` populates — and benefits
    from — the same content-addressed cache as ``repro run``, and a
    wedged compile or runaway binary surfaces as a ``... timed out``
    note instead of hanging forever.
    """
    if not native.native_available():
        return None, "gcc not available"
    try:
        artifact = native.build_artifact(
            files, binary, kind="exe", flags=flags,
            compile_files=compile_files,
        )
    except native.NativeBuildError as exc:
        if exc.timed_out:
            return None, "compile timed out"
        return None, f"compile failed: {exc.stderr[:200]}"
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        init_blob.tofile(str(tmp / "i.bin"))
        try:
            run = native.run_binary(
                artifact.path, ["i.bin", str(timesteps), "o.bin"],
                cwd=str(tmp),
            )
        except native.NativeRunError as exc:
            if exc.timed_out:
                return None, "run timed out"
            return None, f"run failed: {exc}"
        if run.returncode != 0:
            return None, f"run failed: {run.stderr[:200]}"
        got = np.fromfile(str(tmp / "o.bin"), dtype=out_dtype)
    return got.reshape(tuple(out_shape)), ""


def _compiled_c(stencil, init, timesteps, boundary) -> Tuple[float, str]:
    from ..backend.c_codegen import CCodeGenerator

    code = CCodeGenerator(stencil, {}, boundary=boundary).generate("vrf")
    blob = np.concatenate([p.ravel() for p in init]).astype(
        stencil.output.dtype.np_dtype
    )
    got, note = _compile_and_run(
        code.files, "vrf", blob, timesteps,
        stencil.output.dtype.np_dtype, stencil.output.shape,
        flags=["-O2"],
    )
    if note:
        return float("nan"), note
    ref = reference_run(stencil, init, timesteps, boundary=boundary)
    return relative_error(got, ref), ""


def _native_inprocess(stencil, init, timesteps,
                      boundary) -> Tuple[float, str]:
    """Run the shared-library backend itself (same cache as repro run)."""
    if not native.native_available():
        return float("nan"), "gcc not available"
    try:
        ex = native.NativeExecutor(stencil, {}, boundary=boundary)
        got = ex.run(init, timesteps)
    except native.NativeBuildError as exc:
        if exc.timed_out:
            return float("nan"), "compile timed out"
        return float("nan"), f"compile failed: {exc.stderr[:200]}"
    except native.NativeRunError as exc:
        return float("nan"), f"run failed: {exc}"
    ref = reference_run(stencil, init, timesteps, boundary=boundary)
    return relative_error(got, ref), ""


def verify_benchmark(name: str, dtype: DType = f64,
                     timesteps: int = 4, seed: int = 0,
                     boundary: str = "periodic") -> List[PathResult]:
    """Run every execution path of one benchmark; return the results."""
    bench = benchmark_by_name(name)
    grid = tuple(
        max(g, 4 * bench.radius) for g in _GRIDS[bench.ndim]
    )
    prog, _ = bench.build(grid=grid, dtype=dtype, boundary=boundary)
    stencil = prog.ir
    tol = dtype.tolerance
    rng = np.random.default_rng(seed)
    init = [
        rng.random(grid).astype(dtype.np_dtype) for _ in range(2)
    ]
    ref = reference_run(stencil, init, timesteps, boundary=boundary)
    results: List[PathResult] = []

    scheduled = ScheduledExecutor(
        stencil, _tiled_schedule(stencil), boundary=boundary
    ).run(init, timesteps)
    results.append(PathResult(
        "scheduled (tiled)", relative_error(scheduled, ref), tol
    ))

    dist = distributed_run(
        stencil, init, timesteps, _MPI[bench.ndim], boundary=boundary
    )
    results.append(PathResult(
        f"distributed {_MPI[bench.ndim]}", relative_error(dist, ref), tol
    ))

    tile = tuple(max(2 * bench.radius, s // 2) for s in grid)
    temporal = TemporalTilingExecutor(
        stencil, tile, 2, boundary=boundary
    ).run(init, timesteps // 2)
    ref_even = reference_run(
        stencil, init, 2 * (timesteps // 2), boundary=boundary
    )
    results.append(PathResult(
        "temporal tiling (T=2)", relative_error(temporal, ref_even), tol
    ))

    err, note = _compiled_c(stencil, init, timesteps, boundary)
    if note:
        results.append(PathResult("compiled C", float("nan"), tol,
                                  ran=False, note=note))
    else:
        results.append(PathResult("compiled C", err, tol))

    err, note = _native_inprocess(stencil, init, timesteps, boundary)
    if note:
        results.append(PathResult("native (in-process)", float("nan"),
                                  tol, ran=False, note=note))
    else:
        results.append(PathResult("native (in-process)", err, tol))

    err, note = _compiled_mpi_stub(stencil, init, timesteps, boundary)
    if note:
        results.append(PathResult("compiled MPI (stub)", float("nan"),
                                  tol, ran=False, note=note))
    else:
        results.append(PathResult("compiled MPI (stub)", err, tol))

    err, note = _compiled_athread_stub(name, dtype, init, timesteps,
                                       boundary)
    if note:
        results.append(PathResult("compiled athread (stub)",
                                  float("nan"), tol, ran=False,
                                  note=note))
    else:
        results.append(PathResult("compiled athread (stub)", err, tol))
    return results


def _compiled_athread_stub(name, dtype, init, timesteps,
                           boundary) -> Tuple[float, str]:
    """Build the Sunway master/slave bundle against the sequential
    athread stub and execute it (SPM staging, DMA reply counters and
    the round-robin CPE tile mapping all run)."""
    from ..backend.targets import generate
    from ..evalsuite.harness import build_with_schedule

    bench = benchmark_by_name(name)
    # athread codegen needs tiles dividing the domain: use a grid the
    # Table-5 tile divides after clamping
    grid = (64, 64) if bench.ndim == 2 else (16, 16, 64)
    grid = tuple(max(g, 4 * bench.radius) for g in grid)
    try:
        prog, _ = build_with_schedule(name, "sunway", dtype, grid=grid)
        code = generate(prog.ir, prog.schedules(), "vsw",
                        target="sunway", boundary=boundary)
    except ValueError as exc:
        return float("nan"), f"not athread-expressible here: {exc}"
    rng = np.random.default_rng(0)
    local_init = [
        rng.random(grid).astype(dtype.np_dtype) for _ in range(2)
    ]
    blob = np.concatenate([p.ravel() for p in local_init])
    got, note = _compile_and_run(
        code.files, "vsw", blob, timesteps, dtype.np_dtype, grid,
        flags=["-O2", "-DMSC_ATHREAD_STUB"],
    )
    if note:
        return float("nan"), note
    ref = reference_run(prog.ir, local_init, timesteps,
                        boundary=boundary)
    return relative_error(got, ref), ""


def _compiled_mpi_stub(stencil, init, timesteps,
                       boundary) -> Tuple[float, str]:
    """Build the distributed bundle against the single-rank MPI stub
    and run it: the full pack/Isend/Irecv/unpack protocol on self
    messages (periodic wraps through the exchange)."""
    from ..backend.mpi_codegen import generate_mpi

    if stencil.output.dtype is not f64:
        return float("nan"), "MPI comm library is double-precision"
    grid = (1,) * stencil.output.ndim
    code = generate_mpi(stencil, {}, "vmpi", grid, boundary=boundary)
    blob = np.concatenate([p.ravel() for p in init]).astype(np.float64)
    got, note = _compile_and_run(
        code.files, "vmpi", blob, timesteps, np.float64,
        stencil.output.shape,
        flags=["-O2", "-DMSC_MPI_STUB"],
        compile_files=["vmpi_mpi.c", "msc_comm.c"],
    )
    if note:
        return float("nan"), note
    ref = reference_run(stencil, init, timesteps, boundary=boundary)
    return relative_error(got, ref), ""
