"""ASCII line charts for the figure artefacts.

matplotlib is unavailable offline, so the figure benches render their
series as monospace charts: good enough to eyeball the scalability
curves and the auto-tuning convergence in ``benchmarks/results/``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def _nice(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.1e}"
    return f"{value:.4g}"


def bar_chart(items: Dict[str, float], width: int = 40,
              fmt=None) -> str:
    """Horizontal bar chart of named non-negative values.

    Bars are scaled to the largest value; each row shows the label,
    the bar and the formatted value (``fmt(value)``, default
    :func:`_nice`).  Used by the perf observatory for per-phase time
    shares.
    """
    if not items:
        raise ValueError("no bars to plot")
    if width < 8:
        raise ValueError("chart too small to be readable")
    fmt = fmt or _nice
    top = max(items.values())
    if top < 0 or any(v < 0 for v in items.values()):
        raise ValueError("bar values must be non-negative")
    label_w = max(len(k) for k in items)
    lines = []
    for name, value in items.items():
        n = int(round(value / top * width)) if top > 0 else 0
        lines.append(
            f"{name:<{label_w}s} |{'#' * n:<{width}s}| {fmt(value)}"
        )
    return "\n".join(lines)


def line_chart(series: Dict[str, List[Tuple[float, float]]],
               width: int = 64, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               logx: bool = False, logy: bool = False) -> str:
    """Render named (x, y) series onto a character grid.

    Each series gets a marker from ``oxX+*``...; a legend follows the
    chart.  Log scales are applied before placement when requested
    (values must then be positive).
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be readable")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValueError("logx requires positive x values")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("logy requires positive y values")
            return math.log10(v)
        return v

    xs = [tx(x) for pts in series.values() for x, _ in pts]
    ys = [ty(y) for pts in series.values() for _, y in pts]
    if not xs:
        raise ValueError("series contain no points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = int((tx(x) - x_min) / x_span * (width - 1))
            row = int((ty(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    raw_y_max = max(y for pts in series.values() for _, y in pts)
    raw_y_min = min(y for pts in series.values() for _, y in pts)
    raw_x_max = max(x for pts in series.values() for x, _ in pts)
    raw_x_min = min(x for pts in series.values() for x, _ in pts)
    lines = []
    label_top = f"{_nice(raw_y_max)} -"
    label_bot = f"{_nice(raw_y_min)} -"
    pad = max(len(label_top), len(label_bot))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = label_top.rjust(pad)
        elif r == height - 1:
            prefix = label_bot.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * pad + "+" + "-" * width)
    x_axis = (
        f"{_nice(raw_x_min)}".ljust(width // 2)
        + f"{_nice(raw_x_max)}".rjust(width // 2)
    )
    lines.append(" " * (pad + 1) + x_axis)
    lines.append(" " * (pad + 1) + f"({x_label} vs {y_label}"
                 + (", log-x" if logx else "")
                 + (", log-y" if logy else "") + ")")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (pad + 1) + legend)
    return "\n".join(lines)
